// Package checkpoint is the durable-state envelope used by resumable
// sweeps: a versioned, checksummed JSON container written with the
// write-to-temp-then-rename discipline, so a reader never observes a
// half-written file and a torn write is detected rather than trusted.
//
// The payload format is plain JSON. Go's encoding/json is deterministic —
// struct fields marshal in declaration order and floats use the shortest
// round-trippable representation — so identical state produces identical
// bytes, which the kill-and-resume fence relies on.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Magic identifies a checkpoint envelope.
const Magic = "chrono-checkpoint"

// Version is the current envelope format version. Bump it on any
// incompatible payload change; Load rejects mismatches with ErrVersion so
// a resumed run falls back to re-execution instead of misinterpreting old
// state.
const Version = 1

// Sentinel errors, matched with errors.Is.
var (
	// ErrCorrupt marks a failed magic or checksum validation: the file is
	// truncated, torn, or not a checkpoint at all.
	ErrCorrupt = errors.New("checkpoint: corrupt or not a checkpoint file")
	// ErrVersion marks an envelope written by an incompatible format
	// version.
	ErrVersion = errors.New("checkpoint: incompatible format version")
)

// envelope is the on-disk container.
type envelope struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	// CRC is the IEEE CRC-32 of the raw payload bytes.
	CRC     uint32          `json:"crc"`
	Payload json.RawMessage `json:"payload"`
}

// Save marshals payload into a versioned, checksummed envelope and writes
// it atomically: the bytes land in a temporary file in the target
// directory, are synced, and are renamed over path. A crash at any point
// leaves either the previous file or the complete new one.
func Save(path string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal payload: %w", err)
	}
	env := envelope{Magic: Magic, Version: Version, CRC: crc32.ChecksumIEEE(raw), Payload: raw}
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal envelope: %w", err)
	}
	return WriteFileAtomic(path, data)
}

// Load reads an envelope, validates magic, version, and checksum, and
// unmarshals the payload into out.
func Load(path string, out any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	if env.Magic != Magic {
		return fmt.Errorf("%w: %s: bad magic %q", ErrCorrupt, path, env.Magic)
	}
	if env.Version != Version {
		return fmt.Errorf("%w: %s: file version %d, supported %d", ErrVersion, path, env.Version, Version)
	}
	if crc := crc32.ChecksumIEEE(env.Payload); crc != env.CRC {
		return fmt.Errorf("%w: %s: payload CRC %08x, recorded %08x", ErrCorrupt, path, crc, env.CRC)
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return fmt.Errorf("checkpoint: unmarshal payload of %s: %w", path, err)
	}
	return nil
}

// WriteFileAtomic writes data to path through a same-directory temporary
// file, fsync, and rename — the manifest-update discipline every durable
// artifact of a sweep uses.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		if rmErr := os.Remove(tmpName); rmErr != nil && !os.IsNotExist(rmErr) {
			// Best effort: the stray temp file is harmless and the original
			// error is the one worth surfacing.
			_ = rmErr
		}
	}
	if _, err := tmp.Write(data); err != nil {
		if cerr := tmp.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		if cerr := tmp.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return err
	}
	return nil
}
