package core

import (
	"testing"

	"chrono/internal/mem"
	"chrono/internal/simclock"
	"chrono/internal/vm"
)

// White-box tests for drainQueue's transient-failure handling: a busy
// page must not wedge the promotion queue (skip-and-requeue), retries
// are bounded, and capacity exhaustion keeps its stop-the-drain
// semantics.

func TestDrainQueueTransientSkipsAndRequeues(t *testing.T) {
	c, k := attach(t, quietOptions())
	busy := k.addPage(mem.SlowTier, 1)
	ok1 := k.addPage(mem.SlowTier, 1)
	ok2 := k.addPage(mem.SlowTier, 1)
	c.queue = append(c.queue, busy.ID, ok1.ID, ok2.ID)
	k.transient = func(pg *vm.Page) bool { return pg == busy }
	c.opt.MigrateTick = 100 * simclock.Millisecond

	c.drainQueue(k.clock.Now())
	// The busy head must not stall the siblings behind it.
	if len(k.promotes) != 2 {
		t.Fatalf("promoted %d pages behind the busy head, want 2", len(k.promotes))
	}
	// The busy page is requeued at the back, not retried this tick.
	if c.QueueLen() != 1 || c.queue[0] != busy.ID {
		t.Fatalf("busy page not requeued: queue=%v", c.queue)
	}
	if c.retries[busy.ID] != 1 {
		t.Fatalf("retry count = %d, want 1", c.retries[busy.ID])
	}

	// Once the transient condition clears, the next tick promotes it.
	k.transient = nil
	c.drainQueue(k.clock.Now())
	if len(k.promotes) != 3 || c.QueueLen() != 0 {
		t.Fatalf("busy page not promoted after condition cleared: promotes=%d queue=%d",
			len(k.promotes), c.QueueLen())
	}
	if _, live := c.retries[busy.ID]; live {
		t.Fatal("retry count not cleared after successful promotion")
	}
}

func TestDrainQueueDropsAfterMaxRetries(t *testing.T) {
	c, k := attach(t, quietOptions())
	busy := k.addPage(mem.SlowTier, 1)
	c.queue = append(c.queue, busy.ID)
	k.transient = func(*vm.Page) bool { return true }
	c.opt.MigrateTick = 100 * simclock.Millisecond

	for i := 0; i < maxPromoteRetries; i++ {
		if c.QueueLen() != 1 {
			t.Fatalf("tick %d: queue length %d, want 1", i, c.QueueLen())
		}
		c.drainQueue(k.clock.Now())
	}
	if c.QueueLen() != 0 {
		t.Fatalf("page not dropped after %d transient aborts", maxPromoteRetries)
	}
	if c.RetryDropped != 1 {
		t.Fatalf("RetryDropped = %d, want 1", c.RetryDropped)
	}
	if _, live := c.retries[busy.ID]; live {
		t.Fatal("retry count leaked after drop")
	}
	if len(k.promotes) != 0 {
		t.Fatal("a transiently failing page was promoted")
	}
}

func TestDrainQueueNoCapacityStillStopsDrain(t *testing.T) {
	c, k := attach(t, quietOptions())
	a := k.addPage(mem.SlowTier, 1)
	b := k.addPage(mem.SlowTier, 1)
	c.queue = append(c.queue, a.ID, b.ID)
	k.promoteOK = func(*vm.Page) bool { return false } // capacity failure
	c.opt.MigrateTick = 100 * simclock.Millisecond

	c.drainQueue(k.clock.Now())
	// Capacity exhaustion: head requeued at the FRONT, drain stopped —
	// retrying b against the same dry budget would be wasted work.
	if c.QueueLen() != 2 || c.queue[0] != a.ID {
		t.Fatalf("capacity failure changed queue semantics: queue=%v", c.queue)
	}
	if len(k.promotes) != 0 {
		t.Fatal("promotion happened against scripted capacity failure")
	}
}

// TestDrainQueueStaleClearsRetryCount guards the retries map against
// leaking entries for pages that left the slow tier by other means.
func TestDrainQueueStaleClearsRetryCount(t *testing.T) {
	c, k := attach(t, quietOptions())
	pg := k.addPage(mem.SlowTier, 1)
	c.queue = append(c.queue, pg.ID)
	k.transient = func(*vm.Page) bool { return true }
	c.opt.MigrateTick = 100 * simclock.Millisecond
	c.drainQueue(k.clock.Now()) // transient: requeued with count 1

	k.transient = nil
	pg.Tier = mem.FastTier // promoted by reclaim/another path
	c.drainQueue(k.clock.Now())
	if c.QueueLen() != 0 {
		t.Fatal("stale entry not removed")
	}
	if _, live := c.retries[pg.ID]; live {
		t.Fatal("retry count leaked for stale entry")
	}
}
