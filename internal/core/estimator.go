package core

import (
	"math"

	"chrono/internal/rng"
)

// This file implements the theoretical analysis of Appendix B: the
// variance comparison between the mean-value and maximum-value access
// period estimators (B.1) and the hot-page selection efficiency model
// (B.2). The property tests validate the implementation against the
// closed forms, and cmd/reproduce regenerates Figures B1/B2 from it.

// MeanEstimate is the naive estimator T̂ = (2/n)·Σtᵢ of an access period
// T0 from n CIT samples tᵢ ~ U[0, T0] (Appendix B eq. 2).
func MeanEstimate(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, t := range samples {
		sum += t
	}
	return 2 * sum / float64(len(samples))
}

// MaxEstimate is the candidate-filter estimator T̂ = ((n+1)/n)·max tᵢ
// (Appendix B eq. 4) — the minimum-variance unbiased estimator by
// Lehmann–Scheffé.
func MaxEstimate(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	m := samples[0]
	for _, t := range samples[1:] {
		if t > m {
			m = t
		}
	}
	n := float64(len(samples))
	return (n + 1) / n * m
}

// MeanEstimatorVariance is the closed-form variance T0²/(3n) (eq. 3).
func MeanEstimatorVariance(t0 float64, n int) float64 {
	return t0 * t0 / (3 * float64(n))
}

// MaxEstimatorVariance is the closed-form variance T0²/(n(n+2)) (eq. 6).
func MaxEstimatorVariance(t0 float64, n int) float64 {
	fn := float64(n)
	return t0 * t0 / (fn * (fn + 2))
}

// EstimatorTrial draws n CIT samples for a page of period t0 and returns
// both estimates — the Monte-Carlo side of the B.1 validation.
func EstimatorTrial(r *rng.Source, t0 float64, n int) (mean, max float64) {
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = r.Float64() * t0
	}
	return MeanEstimate(samples), MaxEstimate(samples)
}

// HotProbability is eq. 7: the probability that a page with access period
// ratio x = T/TH is classified hot under n-round filtering: 1 for x < 1,
// (1/x)^n otherwise.
func HotProbability(x float64, n int) float64 {
	if x < 1 {
		return 1
	}
	return math.Pow(1/x, float64(n))
}

// UniformEfficiency is the closed form E(n) = (n−1)/n² for the totally
// random page distribution h(x) = 1 (eq. 12). Its maximum is at n = 2.
func UniformEfficiency(n int) float64 {
	if n < 1 {
		return 0
	}
	fn := float64(n)
	return (fn - 1) / (fn * fn)
}

// HDensity is the page-density family h(x, α) of eq. 11 (unnormalized):
// x^(1−1/α) · α^(αx + 1/(αx)), dense in the hot region and sparse in the
// cold region for small α.
func HDensity(x, alpha float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, 1-1/alpha) * math.Pow(alpha, alpha*x+1/(alpha*x))
}

// hNormalizer computes C_α with ∫₀¹ h(x,α)dx = 1 by Simpson's rule.
func hNormalizer(alpha float64) float64 {
	return integrate(func(x float64) float64 { return HDensity(x, alpha) }, 1e-9, 1, 4096)
}

// SelectionStats evaluates eqs. 9-10 for the density h(·, α): it returns
// S_f(n) (expected miss-classified cold pages), R_f(n) (real-hot-page
// ratio) and E_f(n) = R_f(n)/n (promotion efficiency).
func SelectionStats(alpha float64, n int) (s, r, e float64) {
	c := hNormalizer(alpha)
	// S_f(n) = ∫₁^∞ f(x)·x^(−n) dx; the density decays fast enough that
	// [1, 64] captures the mass for all α in (0, 1].
	s = integrate(func(x float64) float64 {
		return HDensity(x, alpha) / c * math.Pow(x, -float64(n))
	}, 1, 64, 8192)
	r = 1 / (1 + s)
	e = r / float64(n)
	return s, r, e
}

// BestRounds returns the scan-round count in [2, maxN] with the highest
// selection efficiency for the density h(·, α). The comparison starts at
// n = 2, matching the paper's Figure B2: single-round selection carries
// the measurement-variance penalty of Appendix B.1 that the efficiency
// model deliberately does not capture.
func BestRounds(alpha float64, maxN int) int {
	best, bestE := 2, 0.0
	for n := 2; n <= maxN; n++ {
		_, _, e := SelectionStats(alpha, n)
		if e > bestE {
			best, bestE = n, e
		}
	}
	return best
}

// integrate is composite Simpson's rule with the given even panel count.
func integrate(f func(float64) float64, a, b float64, panels int) float64 {
	if panels%2 == 1 {
		panels++
	}
	h := (b - a) / float64(panels)
	sum := f(a) + f(b)
	for i := 1; i < panels; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}
