package core

import (
	"chrono/internal/mem"
	"chrono/internal/simclock"
	"chrono/internal/vm"
)

// This file implements proactive page demotion (§3.3.1) and the demotion
// side of the thrashing monitor (§3.3.2).

// demotionTick maintains the promotion-aware watermark and demotes cold
// pages when fast-tier availability falls below the high watermark.
//
// The gap between high and pro is "twice the default scan interval
// multiplied by the promotion rate limit" (§3.3.1): enough headroom to
// absorb two scan periods of promotions without stalling them.
func (c *Chrono) demotionTick(now simclock.Time) {
	node := c.k.Node()
	high := node.Watermarks(mem.FastTier).High
	gapPages := int64(2 * c.scan.Config().Period.Seconds() * c.rateLimitBps / float64(node.PageSizeBytes))
	// The headroom is bounded: demoting more than a modest slice of the
	// fast tier would evict hot pages to make room for hypothetical ones.
	maxGap := node.Capacity(mem.FastTier) / 8
	if gapPages > maxGap {
		gapPages = maxGap
	}
	node.SetProWatermark(high + gapPages)

	if !node.BelowHigh(mem.FastTier) {
		return
	}
	target := node.DemotionTarget(mem.FastTier)
	guard := 4096
	for target > 0 && guard > 0 {
		guard--
		victims := c.k.InactiveTail(mem.FastTier, 16)
		if len(victims) == 0 {
			return
		}
		progress := false
		for _, pg := range victims {
			if target <= 0 {
				break
			}
			if c.demotePage(pg, now) {
				target -= int64(pg.Size)
				progress = true
			}
		}
		if !progress {
			return
		}
		target = node.DemotionTarget(mem.FastTier)
	}
}

// demotePage demotes one page. The thrash-monitor bookkeeping (§3.3.2)
// happens in OnMigrated so that demotions initiated by the kernel's own
// reclaim are tracked identically.
func (c *Chrono) demotePage(pg *vm.Page, now simclock.Time) bool {
	if !c.k.Demote(pg) {
		return false
	}
	c.Demoted++
	return true
}

// OnMigrated implements policy.Policy: every freshly demoted page — by
// Chrono's proactive daemon or by kernel reclaim — is flagged demoted and
// immediately poisoned, so its demotion timestamp substitutes for a
// Ticking-scan timestamp and it re-enters the promotion pipeline under
// the same CIT criteria (§3.3.2).
func (c *Chrono) OnMigrated(pg *vm.Page, from, to mem.TierID) {
	if to != mem.SlowTier || c.opt.DisableThrashMonitor {
		return
	}
	pg.Flags |= vm.FlagDemoted
	c.k.Protect(pg) // ProtTS := demotion time
}
