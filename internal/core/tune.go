package core

import (
	"math"
	"math/bits"

	"chrono/internal/mem"
	"chrono/internal/simclock"
	"chrono/internal/units"
	"chrono/internal/vm"
)

// This file implements the adaptive parameter tuning of §3.2: the
// semi-automatic CIT threshold controller and the DCSC statistics-based
// fully automatic tuner.

// Threshold clamps: the finest CIT level is 1 ms; values above 2^27 ms
// (~37.3 h) carry no hot/cold signal (§4).
const (
	minThresholdMS = 1
	maxThresholdMS = float64(1 << 27)
)

// semiAutoTick applies the §3.2.1 update once per scan period:
//
//	r = rate_limit / enqueue_rate,  TH ← (1 − δ + δ·r)·TH.
//
// It also closes the thrash-monitor accounting window (§3.3.2).
func (c *Chrono) semiAutoTick(now simclock.Time) {
	period := c.scan.Config().Period.Seconds()
	// "Averaging the enqueue rate within each Ticking-scan period ...
	// ensures smooth and predictable adjustments": the controller divides
	// by a cross-period running average rather than the raw last-period
	// rate, damping threshold oscillation.
	c.enqueueRateEMA = 0.5*c.enqueueRateEMA + 0.5*c.enqueuedBytes/period
	enqueueRate := c.enqueueRateEMA
	c.enqueuedBytes = 0
	c.expireCandidates(now)

	if c.opt.Tuning == TuneSemiAuto {
		r := 1.0
		if enqueueRate > 0 {
			r = c.rateLimitBps / enqueueRate
		} else {
			// Nothing qualified: open the threshold to find candidates.
			r = 2.0
		}
		// Bound a single step so one noisy period cannot blow the
		// threshold up or collapse it.
		if r > 4 {
			r = 4
		} else if r < 0.1 {
			r = 0.1
		}
		delta := c.opt.DeltaStep
		c.thresholdMS *= 1 - delta + delta*r
		c.clampThreshold()
		c.ThresholdHist.Append(now.Seconds(), c.thresholdMS)
		c.RateLimitHist.Append(now.Seconds(), c.RateLimitMBps())
	}

	// Thrash monitor (§3.3.2): compare the thrashing rate with the
	// promotion rate over the closing scan period.
	if !c.opt.DisableThrashMonitor && c.promotedPages > 0 {
		ratio := float64(c.thrashEvents) / float64(c.promotedPages)
		if ratio > c.opt.ThrashThreshold {
			c.rateLimitBps /= 2
			c.clampRateLimit()
			c.RateLimitHist.Append(now.Seconds(), c.RateLimitMBps())
		}
	}
	c.thrashEvents = 0
	c.promotedPages = 0
}

func (c *Chrono) clampThreshold() {
	if c.thresholdMS < minThresholdMS {
		c.thresholdMS = minThresholdMS
	}
	if c.thresholdMS > maxThresholdMS {
		c.thresholdMS = maxThresholdMS
	}
	if math.IsNaN(c.thresholdMS) || math.IsInf(c.thresholdMS, 0) {
		c.thresholdMS = c.opt.CITThresholdMS
	}
}

func (c *Chrono) clampRateLimit() {
	const minBps = 16e6 // 16 MB/s floor keeps migration responsive
	const maxBps = 4e9  // bounded by the copy engine
	if c.rateLimitBps < minBps {
		c.rateLimitBps = minBps
	}
	if c.rateLimitBps > maxBps {
		c.rateLimitBps = maxBps
	}
}

// expireCandidates drops candidate entries that have not re-faulted for
// two scan periods: the page has either gone cold or was migrated, and a
// stale pass count must not carry into a much later qualification.
func (c *Chrono) expireCandidates(now simclock.Time) {
	maxAge := 2 * c.scan.Config().Period
	var stale []uint64
	c.cands.Range(func(key uint64, v any) bool {
		if entry, ok := v.(*candidate); ok && now-entry.stamp > maxAge {
			stale = append(stale, key)
		}
		return true
	})
	pages := c.k.Pages()
	for _, key := range stale {
		c.cands.Erase(key)
		if pg := pages[key]; pg != nil {
			pg.Flags &^= vm.FlagCandidate
		}
	}
}

// citBucket maps a CIT in milliseconds to its heat-map bucket: the finest
// level is 1 ms, bucket i covers [2^(i-1), 2^i) ms (§4). Lower bucket =
// hotter page.
func (c *Chrono) citBucket(citMS float64) int {
	if citMS < 1 {
		return 0
	}
	b := bits.Len64(uint64(citMS))
	if b >= c.opt.BBuckets {
		b = c.opt.BBuckets - 1
	}
	return b
}

// BucketUpperMS returns the upper CIT bound of a heat-map bucket.
func (c *Chrono) BucketUpperMS(b int) float64 { return math.Exp2(float64(b)) }

// statScan launches one DCSC statistical scan (§3.2.2, Figure 5): a random
// P-victim fraction of resident pages is poisoned with PG_probed for
// two-round CIT collection. The randomized order decouples it from the
// sequential Ticking-scan.
func (c *Chrono) statScan(now simclock.Time) {
	pages := c.k.Pages()
	if len(pages) == 0 {
		return
	}
	c.expireProbes(now)
	n := int(float64(len(pages)) * c.opt.PVictim)
	if n < 1 {
		n = 1
	}
	r := c.k.RNG()
	for i := 0; i < n; i++ {
		pg := pages[r.Intn(len(pages))]
		if pg == nil || pg.Flags.Has(vm.FlagProbed) {
			continue
		}
		pg.Flags |= vm.FlagProbed
		pg.Meta2 = 0 // first-round CIT pending
		c.k.Protect(pg)
		c.probes = append(c.probes, probe{id: pg.ID, stamp: now})
	}
}

// probeExpiry is how long a victim may stay poisoned without faulting
// before it is recorded as cold. Without this, pages too cold to fault
// within the tuning window would never reach the heat map and the CIT
// distribution would be conditioned on hotness.
const probeExpiry = 8 * simclock.Second

// expireProbes sweeps outstanding victims: completed ones are dropped;
// ones poisoned for longer than probeExpiry are recorded with their
// elapsed idle time (a lower bound on their true CIT) and released.
func (c *Chrono) expireProbes(now simclock.Time) {
	pages := c.k.Pages()
	live := c.probes[:0]
	for _, pr := range c.probes {
		pg := pages[pr.id]
		if pg == nil || !pg.Flags.Has(vm.FlagProbed) {
			continue // completed both rounds (or page freed)
		}
		if now-pr.stamp < probeExpiry {
			live = append(live, pr)
			continue
		}
		pg.Flags &^= vm.FlagProbed
		pg.Meta2 = 0
		c.k.Unprotect(pg)
		c.recordSample(pg, (now-pr.stamp).Millis()*c.citScale)
	}
	c.probes = live
}

// onProbeFault handles a fault on a PG_probed victim: the first round
// stores its CIT and re-poisons; the second records max(CIT1, CIT2) into
// the tier's heat map — the maximum-value estimator Appendix B.1 shows to
// be minimum-variance.
func (c *Chrono) onProbeFault(pg *vm.Page, cit simclock.Duration, now simclock.Time) {
	c.k.ChargeKernel(units.NS(120 * c.k.CostScale()))
	if pg.Meta2 == 0 {
		// Round 1: stash CIT (+1 so a 0ns CIT is distinguishable) and
		// re-poison for round 2.
		pg.Meta2 = uint64(cit) + 1
		c.k.Protect(pg)
		pg.Flags |= vm.FlagProbed // Protect preserves flags; be explicit
		return
	}
	cit1 := simclock.Duration(pg.Meta2 - 1)
	pg.Meta2 = 0
	pg.Flags &^= vm.FlagProbed
	final := cit
	if cit1 > final {
		final = cit1
	}
	c.recordSample(pg, final.Millis()*c.citScale)
}

// recordSample adds one two-round CIT observation to the page's tier heat
// map. Huge pages redistribute into base-page terms: a huge page folding
// 2^k base pages in bucket i counts as 2^k base pages in bucket i+k —
// the paper's §3.4 rule (2 MB: 512 pages, bucket i+9) expressed through
// the actual fold factor, since adjacent buckets are 2× frequency apart.
func (c *Chrono) recordSample(pg *vm.Page, citMS float64) {
	b := c.citBucket(citMS)
	weight := 1.0
	if pg.IsHuge() {
		b += bits.Len32(uint32(pg.Size)) - 1
		if b >= c.opt.BBuckets {
			b = c.opt.BBuckets - 1
		}
		weight = float64(pg.Size)
	}
	c.heat[pg.Tier][b] += weight
	c.samples[pg.Tier] += weight
	c.DCSCSamples++
}

// HeatMap returns a copy of the current heat map of a tier (for tests and
// the report harness).
func (c *Chrono) HeatMap(t mem.TierID) []float64 {
	out := make([]float64, len(c.heat[t]))
	copy(out, c.heat[t])
	return out
}

// dcscTune recomputes the CIT threshold and the rate limit from the heat
// maps (§3.2.2, Figure 5 steps 4-5):
//
//   - Scale each tier's bucket counts to its resident population.
//   - Walk buckets from hottest to coldest accumulating estimated pages;
//     the bucket where the running total crosses the fast-tier capacity is
//     the overlap point: pages hotter than it belong in the fast tier.
//   - The threshold becomes that bucket's CIT upper bound; the number of
//     hot pages currently resident in the slow tier is the misplacement,
//     and rate_limit = misplaced_bytes / scan_period.
func (c *Chrono) dcscTune(now simclock.Time) {
	node := c.k.Node()
	resident := [mem.NumTiers]float64{
		mem.FastTier: float64(node.Used(mem.FastTier)),
		mem.SlowTier: float64(node.Used(mem.SlowTier)),
	}
	if c.samples[mem.FastTier] == 0 && c.samples[mem.SlowTier] == 0 {
		return
	}
	c.k.ChargeKernel(units.NS(2000 * c.k.CostScale())) // heat-map aggregation

	est := func(t mem.TierID, b int) float64 {
		if c.samples[t] == 0 {
			return 0
		}
		return c.heat[t][b] / c.samples[t] * resident[t]
	}

	fastCap := float64(node.Capacity(mem.FastTier))
	var cum, misplaced float64
	overlap := c.opt.BBuckets - 1
	frac := 1.0
	for b := 0; b < c.opt.BBuckets; b++ {
		bucketTotal := est(mem.FastTier, b) + est(mem.SlowTier, b)
		misplaced += est(mem.SlowTier, b)
		if cum+bucketTotal >= fastCap {
			overlap = b
			if bucketTotal > 0 {
				frac = (fastCap - cum) / bucketTotal
			}
			break
		}
		cum += bucketTotal
	}

	// The crossing bucket only partially fits in the fast tier:
	// interpolate the overlap point inside it (geometrically — adjacent
	// buckets are 2x apart) so mildly skewed hotness distributions,
	// where one bucket holds many near-equal pages, still get a sharp
	// classification boundary instead of a 2x-quantized one.
	lo := c.BucketUpperMS(overlap - 1)
	c.thresholdMS = lo * math.Pow(2, frac)
	c.clampThreshold()

	period := c.scan.Config().Period.Seconds()
	newLimit := misplaced * float64(node.PageSizeBytes) / period
	// Smooth the limit so one noisy window does not whipsaw migration.
	c.rateLimitBps = 0.5*c.rateLimitBps + 0.5*newLimit
	c.clampRateLimit()

	c.ThresholdHist.Append(now.Seconds(), c.thresholdMS)
	c.RateLimitHist.Append(now.Seconds(), c.RateLimitMBps())

	// Decay the heat maps: old observations fade across tuning windows.
	for t := range c.heat {
		for b := range c.heat[t] {
			c.heat[t][b] *= 0.5
		}
		c.samples[t] *= 0.5
	}
}
