// Package core implements Chrono, the paper's contribution: an OS-level
// tiering system built on timer-based hotness measurement.
//
// Components (paper §3, Figure 3):
//
//   - Meticulous page promotion (§3.1): the Ticking-scan poisons slow-tier
//     pages and captures the idle time (CIT) between the scan and the next
//     access — a per-page metric that is statistically proportional to the
//     access interval, decoupling frequency resolution from the scan rate.
//     A two-round candidate filter (an XArray of candidates re-evaluated
//     on the following scan pass) and a rate-limited promotion queue turn
//     CIT classifications into stable migrations.
//   - Adaptive parameter tuning (§3.2): semi-automatic tuning adjusts the
//     CIT threshold against a user rate limit via
//     TH ← (1−δ+δ·r)·TH with r = rate_limit / enqueue_rate; the default
//     fully automatic mode adds Dynamic CIT Statistic Collection (DCSC):
//     random victim probing builds per-tier CIT heat maps whose overlap
//     point yields both the threshold and the rate limit.
//   - Proactive page demotion (§3.3): a promotion-aware "pro" watermark
//     above the high watermark triggers LRU demotion early, keeping free
//     fast-tier memory for promotions, and a thrashing monitor halves the
//     promotion rate when recently demoted pages re-qualify too often.
//   - Huge-page support (§3.4): thresholds scale by page size
//     (TH_2MB = TH_4KB/512) and DCSC redistributes huge-page samples into
//     the base-page heat-map buckets (bucket i → i+9, ×512 pages).
package core

import (
	"chrono/internal/mem"
	"chrono/internal/policy"
	"chrono/internal/policy/scan"
	"chrono/internal/simclock"
	"chrono/internal/stats"
	"chrono/internal/units"
	"chrono/internal/vm"
	"chrono/internal/xarray"
)

// Tuning selects the parameter tuning mode (§3.2).
type Tuning int

// Tuning modes.
const (
	// TuneDCSC is the default fully automatic mode: DCSC statistics tune
	// both the CIT threshold and the promotion rate limit.
	TuneDCSC Tuning = iota
	// TuneSemiAuto keeps the user's rate limit fixed and auto-tunes only
	// the CIT threshold against it.
	TuneSemiAuto
)

// Options configures Chrono. Zero values take the Table 2 defaults.
type Options struct {
	// Scan configures the Ticking-scan pacing (scan step / scan period;
	// Table 2: 256 MB step, 60 s period).
	Scan scan.Config
	// Rounds is the candidate-filter depth (default 2; §3.1.2 and
	// Appendix B argue 2 is optimal; Chrono-basic uses 1, -thrice 3).
	Rounds int
	// Tuning selects the tuning mode (default TuneDCSC).
	Tuning Tuning
	// CITThresholdMS is the initial classification threshold (Table 2:
	// 1000 ms, auto-tuned thereafter).
	CITThresholdMS float64
	// RateLimitMBps is the initial (semi-auto: permanent) promotion rate
	// limit (Table 2: 100 MB/s, auto-tuned under DCSC).
	RateLimitMBps float64
	// DeltaStep is the threshold adaption step δ (Table 2: 0.5).
	DeltaStep float64
	// PVictim is the fraction of pages probed per DCSC statistical scan.
	// The paper's 0.003% of a 256 GB machine is ~2000 pages per scan; at
	// simulator scale the default 0.002 keeps the probe-fault volume a
	// small fraction of Ticking-scan faults (matching the paper's
	// context-switch ordering) while still collecting >600 samples per
	// tuning window (see DESIGN.md on scaling).
	PVictim float64
	// BBuckets is the number of CIT heat-map buckets (Table 2: 28; the
	// finest level is 1 ms and bucket i covers [2^(i-1), 2^i) ms).
	BBuckets int
	// StatPeriod is the DCSC statistical scan interval (default 1 s —
	// "frequent per-second scans", §3.2.2).
	StatPeriod simclock.Duration
	// TunePeriod is the interval between DCSC-based parameter updates
	// (default 5 s).
	TunePeriod simclock.Duration
	// MigrateTick is the promotion-queue drain interval (default 100 ms).
	MigrateTick simclock.Duration
	// ProactiveDemotion enables the pro-watermark demotion scheme
	// (default on; disable for ablation).
	DisableProactiveDemotion bool
	// ThrashMonitor enables the page-thrashing monitor (default on).
	DisableThrashMonitor bool
	// ThrashThreshold is the thrash/promotion ratio above which the rate
	// limit halves (§3.3.2: 20%).
	ThrashThreshold float64
	// DemotionPeriod is the proactive-demotion check interval (1 s).
	DemotionPeriod simclock.Duration
}

func (o Options) withDefaults() Options {
	if o.Rounds == 0 {
		o.Rounds = 2
	}
	if o.CITThresholdMS == 0 {
		o.CITThresholdMS = 1000
	}
	if o.RateLimitMBps == 0 {
		o.RateLimitMBps = 100
	}
	if o.DeltaStep == 0 {
		o.DeltaStep = 0.5
	}
	if o.PVictim == 0 {
		o.PVictim = 0.002
	}
	if o.BBuckets == 0 {
		o.BBuckets = 28
	}
	if o.StatPeriod == 0 {
		o.StatPeriod = simclock.Second
	}
	if o.TunePeriod == 0 {
		o.TunePeriod = 5 * simclock.Second
	}
	if o.MigrateTick == 0 {
		o.MigrateTick = 100 * simclock.Millisecond
	}
	if o.ThrashThreshold == 0 {
		o.ThrashThreshold = 0.20
	}
	if o.DemotionPeriod == 0 {
		o.DemotionPeriod = simclock.Second
	}
	return o
}

// candidate is the XArray entry for a page that passed at least one CIT
// round (§3.1.2, Figure 4).
type candidate struct {
	passes  int
	lastCIT simclock.Duration
	stamp   simclock.Time
}

// probe is one outstanding DCSC victim.
type probe struct {
	id    int64
	stamp simclock.Time
}

// Chrono is the tiering policy.
//
//chrono:statesync checkpointState
type Chrono struct {
	policy.Base //chrono:rebuilt stateless method set
	// opt is construction-time configuration except for the three
	// sysctl-writable knobs, which are serialized.
	opt Options       //chrono:state DeltaStep,PVictim,ThrashThreshold
	k   policy.Kernel //chrono:rebuilt kernel handle, re-bound by Attach

	scan *scan.Set //chrono:state Scan
	// citScale converts an observed poison-to-fault gap into the CIT of
	// a representative real 4 KB page: the simulated page aggregates
	// CostScale real pages, so a real page's idle gap is CostScale× the
	// region's first-fault gap (uniform-phase periodic model). All CIT
	// values, buckets, and thresholds are therefore in real-page
	// milliseconds, directly comparable with the paper's Table 2.
	citScale float64 //chrono:rebuilt derived from Config.CostScale at Attach

	// thresholdMS is the live CIT classification threshold.
	thresholdMS float64 //chrono:state ThresholdMS
	// rateLimitBps is the live promotion rate limit in bytes/second.
	rateLimitBps float64 //chrono:state RateLimitBps

	// Candidate filtering (§3.1.2).
	cands *xarray.XArray //chrono:state Cands
	// Promotion queue, FIFO of page IDs, drained rate-limited.
	queue []int64 //chrono:state Queue
	// enqueue accounting for the semi-auto tuner (bytes per scan period),
	// plus the cross-period average the §3.2.1 controller divides by.
	enqueuedBytes  float64 //chrono:state EnqueuedBytes
	enqueueRateEMA float64 //chrono:state EnqueueRateEMA
	// dequeue/promotion accounting for the thrash monitor.
	promotedPages int64 //chrono:state PromotedPages
	thrashEvents  int64 //chrono:state ThrashEvents
	// retries counts transient promotion failures per queued page ID
	// (busy/pinned-page aborts); pages exceeding maxPromoteRetries are
	// dropped from the queue. Keyed access only — never iterated — so
	// map order cannot leak into the migration order.
	retries map[int64]int8 //chrono:state Retries

	// DCSC heat maps (§3.2.2): per-tier CIT bucket counters, decayed at
	// every tuning step. Sample counts track the scaling denominator.
	heat    [mem.NumTiers][]float64 //chrono:state Heat
	samples [mem.NumTiers]float64   //chrono:state Samples
	// probes tracks outstanding PG_probed victims so ones that never
	// fault (cold pages) are expired into the coldest bucket instead of
	// silently biasing the heat map toward hot pages.
	probes []probe //chrono:state Probes

	// Histories for Figure 10b/c.
	ThresholdHist stats.Series //chrono:state ThresholdHist
	RateLimitHist stats.Series //chrono:state RateLimitHist

	// CITObserver, if set, receives every Ticking-scan CIT observation
	// (page, CIT in ms). Used by the Figure 10a harness.
	CITObserver func(pg *vm.Page, citMS float64) //chrono:rebuilt harness closure; the harness reattaches it

	// Counters exported for tests and reports.
	Enqueued    int64 //chrono:state Enqueued
	Promoted    int64 //chrono:state Promoted
	Demoted     int64 //chrono:state Demoted
	ThrashTotal int64 //chrono:state ThrashTotal
	DCSCSamples int64 //chrono:state DCSCSamples
	//chrono:state FilteredOut
	FilteredOut int64 // candidates dropped by a failed second round
	//chrono:state QueueDropped
	QueueDropped int64 // submissions dropped by the queue bound
	//chrono:state RetryDropped
	RetryDropped int64 // queued pages dropped after repeated transient aborts
}

// New returns a Chrono policy with the given options.
func New(opt Options) *Chrono {
	opt = opt.withDefaults()
	c := &Chrono{
		opt:          opt,
		thresholdMS:  opt.CITThresholdMS,
		rateLimitBps: opt.RateLimitMBps * 1e6,
		cands:        &xarray.XArray{},
		retries:      make(map[int64]int8),
	}
	for t := range c.heat {
		c.heat[t] = make([]float64, opt.BBuckets)
	}
	c.ThresholdHist.Name = "cit_threshold_ms"
	c.RateLimitHist.Name = "rate_limit_mbps"
	return c
}

// Name implements policy.Policy.
func (c *Chrono) Name() string { return "Chrono" }

// Options returns the effective options.
func (c *Chrono) Options() Options { return c.opt }

// ThresholdMS returns the live CIT threshold in milliseconds.
func (c *Chrono) ThresholdMS() float64 { return c.thresholdMS }

// RateLimitMBps returns the live promotion rate limit in MB/s.
func (c *Chrono) RateLimitMBps() float64 { return c.rateLimitBps / 1e6 }

// QueueLen returns the current promotion queue depth.
func (c *Chrono) QueueLen() int { return len(c.queue) }

// Candidates returns the current candidate-set size.
func (c *Chrono) Candidates() int { return c.cands.Len() }

// SetCITObserver installs a callback receiving every Ticking-scan CIT
// observation (Figure 10a instrumentation).
func (c *Chrono) SetCITObserver(fn func(pg *vm.Page, citMS float64)) {
	c.CITObserver = fn
}

// enabled consults the kernel/numa_tiering sysctl (§4: "We add a new
// numa_tiering option in sysctl to enable Chrono"); writing 0 pauses all
// of Chrono's periodic work at the next tick.
func (c *Chrono) enabled() bool {
	v, err := c.k.Sysctl().Get("kernel/numa_tiering")
	return err != nil || v != "0"
}

// Attach implements policy.Policy: wire the Ticking-scan, the promotion
// migrator, the tuners, and the demotion daemon.
func (c *Chrono) Attach(k policy.Kernel) {
	c.k = k
	c.citScale = k.CostScale()
	c.registerSysctl()

	// Ticking-scan (§3.1.1): poison slow-tier pages, recording the scan
	// timestamp. Fast-tier pages are not poisoned — their hotness is
	// tracked by the LRU for demotion — so Chrono's hint-fault volume
	// stays below NUMA balancing's (Figure 8's context-switch column).
	c.scan = scan.Start(k, c.opt.Scan, func(pg *vm.Page, now simclock.Time) {
		if pg.Tier == mem.SlowTier && c.enabled() {
			k.Protect(pg)
		}
	})

	// Promotion-queue migrator (§3.1.2), budgeted by the rate limit.
	k.Clock().EveryKey("chrono/migrate", c.opt.MigrateTick, func(now simclock.Time) {
		if c.enabled() {
			c.drainQueue(now)
		}
	})

	// Semi-auto threshold tuning runs once per scan period (§3.2.1).
	k.Clock().EveryKey("chrono/semiauto", c.scan.Config().Period, func(now simclock.Time) {
		c.semiAutoTick(now)
	})

	if c.opt.Tuning == TuneDCSC {
		// DCSC statistical scans and the derived parameter updates
		// (§3.2.2).
		k.Clock().EveryKey("chrono/stat", c.opt.StatPeriod, func(now simclock.Time) {
			if c.enabled() {
				c.statScan(now)
			}
		})
		k.Clock().EveryKey("chrono/tune", c.opt.TunePeriod, func(now simclock.Time) {
			if c.enabled() {
				c.dcscTune(now)
			}
		})
	}

	if !c.opt.DisableProactiveDemotion {
		k.Clock().EveryKey("chrono/demote", c.opt.DemotionPeriod, func(now simclock.Time) {
			if c.enabled() {
				c.demotionTick(now)
			}
		})
	}

	c.ThresholdHist.Append(0, c.thresholdMS)
	c.RateLimitHist.Append(0, c.RateLimitMBps())
}

// registerSysctl exposes the procfs-style controllers of §4.
func (c *Chrono) registerSysctl() {
	t := c.k.Sysctl()
	positive := func(v float64) error {
		if v <= 0 {
			return errNonPositive
		}
		return nil
	}
	t.Float64("chrono/cit_threshold_ms", "CIT classification threshold (ms)", &c.thresholdMS, positive, nil)
	t.Float64("chrono/rate_limit_bps", "promotion rate limit (bytes/s)", &c.rateLimitBps, positive, nil)
	t.Float64("chrono/delta_step", "threshold adaption step δ", &c.opt.DeltaStep, positive, nil)
	t.Float64("chrono/p_victim", "DCSC victim sampling fraction", &c.opt.PVictim, positive, nil)
	t.Float64("chrono/thrash_threshold", "thrash ratio that halves the rate limit", &c.opt.ThrashThreshold, positive, nil)
}

// errNonPositive rejects non-positive sysctl writes.
var errNonPositive = errorString("value must be positive")

type errorString string

func (e errorString) Error() string { return string(e) }

// effectiveThresholdMS returns the CIT threshold for a page, scaled by its
// size (§3.4: TH_2MB = TH_4KB / 512).
func (c *Chrono) effectiveThresholdMS(pg *vm.Page) float64 {
	return c.thresholdMS / float64(pg.Size)
}

// OnFault implements policy.Policy: the CIT capture point. The engine has
// already cleared the poisoning and stamped pg.LastFault; pg.ProtTS still
// holds the poisoning timestamp, so CIT = now − ProtTS.
func (c *Chrono) OnFault(pg *vm.Page, now simclock.Time) {
	cit := now - pg.ProtTS
	if pg.Flags.Has(vm.FlagProbed) {
		c.onProbeFault(pg, cit, now)
		return
	}
	if pg.Tier != mem.SlowTier {
		return
	}
	c.k.ChargeKernel(units.NS(90 * c.k.CostScale())) // CIT arithmetic + candidate lookup

	citMS := cit.Millis() * c.citScale
	if c.CITObserver != nil {
		c.CITObserver(pg, citMS)
	}
	th := c.effectiveThresholdMS(pg)

	// Thrash detection (§3.3.2): a recently demoted page re-qualifying
	// within a scan period is a thrash event.
	if !c.opt.DisableThrashMonitor && pg.Flags.Has(vm.FlagDemoted) {
		if citMS < th && now-pg.DemoteTS <= c.scan.Config().Period {
			c.thrashEvents++
			c.ThrashTotal++
		}
		pg.Flags &^= vm.FlagDemoted
	}

	key := uint64(pg.ID)
	entry, _ := c.cands.Load(key).(*candidate)

	if citMS >= th {
		// Failed a round: drop candidacy (Figure 4, second-round "N").
		if entry != nil {
			c.cands.Erase(key)
			pg.Flags &^= vm.FlagCandidate
			c.FilteredOut++
		}
		return
	}

	if entry == nil {
		entry = &candidate{}
		c.cands.Store(key, entry)
		pg.Flags |= vm.FlagCandidate
	}
	entry.passes++
	entry.lastCIT = cit
	entry.stamp = now

	if entry.passes >= c.opt.Rounds {
		// Submission (Figure 4 step 5): move to the promotion queue. The
		// queue is bounded to one scan period's worth of rate-limited
		// migration — beyond that, additional candidates cannot possibly
		// migrate before the next re-evaluation, so they are dropped
		// (they re-qualify on a later pass if still hot). The enqueue
		// *demand* is still counted for the semi-auto tuner.
		c.cands.Erase(key)
		pg.Flags &^= vm.FlagCandidate
		c.Enqueued++
		c.enqueuedBytes += float64(int64(pg.Size) * c.k.Node().PageSizeBytes)
		if len(c.queue) < c.maxQueueLen() {
			c.queue = append(c.queue, pg.ID)
		} else {
			c.QueueDropped++
		}
	}
}

// maxQueueLen bounds the promotion queue at one scan period of migration
// budget.
func (c *Chrono) maxQueueLen() int {
	pages := c.rateLimitBps * c.scan.Config().Period.Seconds() /
		float64(c.k.Node().PageSizeBytes)
	if pages < 64 {
		pages = 64
	}
	return int(pages)
}

// maxPromoteRetries bounds how many transient aborts one queued page may
// accumulate before drainQueue stops spending budget on it. A dropped
// page is not lost: if it stays hot, a later Ticking-scan pass
// re-qualifies it through the candidate filter.
const maxPromoteRetries = 3

// drainQueue promotes queued pages within the rate-limit budget.
//
// Failure handling distinguishes the two migration outcomes: a transient
// abort (busy/pinned page) skips-and-requeues the page at the BACK of
// the queue — the head must not wedge the whole queue, and the next
// attempt happens no earlier than the next MigrateTick, which is the
// retry backoff in sim time — while capacity/bandwidth exhaustion
// re-queues at the front and stops the drain, since every subsequent
// entry would fail the same way until the budget refills.
func (c *Chrono) drainQueue(now simclock.Time) {
	budgetBytes := c.rateLimitBps * c.opt.MigrateTick.Seconds()
	pageBytes := float64(c.k.Node().PageSizeBytes)
	pages := c.k.Pages()
	// Bound the pass to the queue length at entry so a page requeued
	// after a transient abort is not retried within the same tick.
	for n := len(c.queue); n > 0 && len(c.queue) > 0 && budgetBytes >= pageBytes; n-- {
		id := c.queue[0]
		c.queue = c.queue[1:]
		pg := pages[id]
		if pg == nil || pg.Tier != mem.SlowTier {
			delete(c.retries, id)
			continue // stale entry
		}
		cost := float64(int64(pg.Size) * c.k.Node().PageSizeBytes)
		if cost > budgetBytes && c.promotedPages > 0 {
			// Re-queue the head; not enough budget this tick.
			c.queue = append([]int64{id}, c.queue...)
			return
		}
		switch c.k.TryPromote(pg) {
		case policy.MigrateOK:
			delete(c.retries, id)
			budgetBytes -= cost
			c.Promoted++
			c.promotedPages += int64(pg.Size)
		case policy.MigrateTransient:
			if c.retries[id]++; c.retries[id] >= maxPromoteRetries {
				delete(c.retries, id)
				c.RetryDropped++
			} else {
				c.queue = append(c.queue, id)
			}
		default: // MigrateNoCapacity
			// Migration bandwidth exhausted or fast tier unreclaimable:
			// retry the page next tick.
			c.queue = append([]int64{id}, c.queue...)
			return
		}
	}
}
