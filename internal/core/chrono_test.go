package core

import (
	"math"
	"testing"

	"chrono/internal/mem"
	"chrono/internal/policy/scan"
	"chrono/internal/simclock"
	"chrono/internal/vm"
)

// attach wires a quiet Chrono to a fake kernel.
func attach(t *testing.T, opt Options) (*Chrono, *fakeKernel) {
	t.Helper()
	k := newFakeKernel()
	k.addPage(mem.SlowTier, 1) // ensure a process/VMA exists for the scanner
	c := New(opt)
	c.Attach(k)
	return c, k
}

func TestDefaults(t *testing.T) {
	c := New(Options{})
	opt := c.Options()
	if opt.Rounds != 2 || opt.CITThresholdMS != 1000 || opt.RateLimitMBps != 100 ||
		opt.DeltaStep != 0.5 || opt.BBuckets != 28 {
		t.Fatalf("defaults: %+v", opt)
	}
	if c.Name() != "Chrono" {
		t.Fatal("name")
	}
	if c.ThresholdMS() != 1000 {
		t.Fatalf("initial threshold %v", c.ThresholdMS())
	}
	if c.RateLimitMBps() != 100 {
		t.Fatalf("initial rate limit %v", c.RateLimitMBps())
	}
}

func TestTwoRoundCandidateFiltering(t *testing.T) {
	c, k := attach(t, quietOptions())
	pg := k.addPage(mem.SlowTier, 1)

	// Round 1: protect, fault 100ms later (CIT 100 < TH 1000).
	k.Protect(pg)
	k.advance(100 * simclock.Millisecond)
	k.fault(c, pg)
	if c.Candidates() != 1 {
		t.Fatalf("candidates after round 1 = %d, want 1", c.Candidates())
	}
	if c.QueueLen() != 0 {
		t.Fatal("page queued after a single round")
	}
	if !pg.Flags.Has(vm.FlagCandidate) {
		t.Fatal("FlagCandidate not set")
	}

	// Round 2: re-protect (next scan pass), fault again below threshold.
	k.Protect(pg)
	k.advance(200 * simclock.Millisecond)
	k.fault(c, pg)
	if c.QueueLen() != 1 {
		t.Fatalf("queue after round 2 = %d, want 1", c.QueueLen())
	}
	if c.Candidates() != 0 {
		t.Fatal("candidate not removed after submission")
	}
	if pg.Flags.Has(vm.FlagCandidate) {
		t.Fatal("FlagCandidate not cleared")
	}
	if c.Enqueued != 1 {
		t.Fatalf("Enqueued=%d", c.Enqueued)
	}
}

func TestFailedSecondRoundDropsCandidate(t *testing.T) {
	c, k := attach(t, quietOptions())
	pg := k.addPage(mem.SlowTier, 1)

	k.Protect(pg)
	k.advance(50 * simclock.Millisecond)
	k.fault(c, pg) // round 1 passes
	k.Protect(pg)
	k.advance(5 * simclock.Second) // CIT 5000 > TH 1000
	k.fault(c, pg)
	if c.Candidates() != 0 {
		t.Fatal("failed second round kept the candidate")
	}
	if c.QueueLen() != 0 {
		t.Fatal("failed round enqueued the page")
	}
	if c.FilteredOut != 1 {
		t.Fatalf("FilteredOut=%d", c.FilteredOut)
	}
}

func TestColdPageNeverCandidates(t *testing.T) {
	c, k := attach(t, quietOptions())
	pg := k.addPage(mem.SlowTier, 1)
	k.Protect(pg)
	k.advance(10 * simclock.Second)
	k.fault(c, pg)
	if c.Candidates() != 0 || c.QueueLen() != 0 {
		t.Fatal("cold page entered the pipeline")
	}
}

func TestOneRoundVariantPromotesImmediately(t *testing.T) {
	opt := quietOptions()
	opt.Rounds = 1
	c, k := attach(t, opt)
	pg := k.addPage(mem.SlowTier, 1)
	k.Protect(pg)
	k.advance(50 * simclock.Millisecond)
	k.fault(c, pg)
	if c.QueueLen() != 1 {
		t.Fatal("Rounds=1 should queue on the first passing CIT")
	}
}

func TestThreeRoundVariant(t *testing.T) {
	opt := quietOptions()
	opt.Rounds = 3
	c, k := attach(t, opt)
	pg := k.addPage(mem.SlowTier, 1)
	for round := 1; round <= 3; round++ {
		k.Protect(pg)
		k.advance(40 * simclock.Millisecond)
		k.fault(c, pg)
		if round < 3 && c.QueueLen() != 0 {
			t.Fatalf("queued after %d rounds", round)
		}
	}
	if c.QueueLen() != 1 {
		t.Fatal("not queued after 3 passing rounds")
	}
}

func TestFastTierFaultIgnored(t *testing.T) {
	c, k := attach(t, quietOptions())
	pg := k.addPage(mem.FastTier, 1)
	k.Protect(pg)
	k.advance(10 * simclock.Millisecond)
	k.fault(c, pg)
	if c.Candidates() != 0 || c.QueueLen() != 0 {
		t.Fatal("fast-tier fault entered the promotion pipeline")
	}
}

func TestHugePageThresholdScaling(t *testing.T) {
	c, k := attach(t, quietOptions())
	huge := k.addPage(mem.SlowTier, 64)
	// Effective threshold = 1000/64 = 15.6 ms. A 40 ms CIT must fail.
	if got := c.effectiveThresholdMS(huge); math.Abs(got-1000.0/64) > 1e-9 {
		t.Fatalf("effective huge threshold %v", got)
	}
	k.Protect(huge)
	k.advance(40 * simclock.Millisecond)
	k.fault(c, huge)
	if c.Candidates() != 0 {
		t.Fatal("huge page with CIT above scaled threshold became candidate")
	}
	// A 5 ms CIT passes.
	k.Protect(huge)
	k.advance(5 * simclock.Millisecond)
	k.fault(c, huge)
	if c.Candidates() != 1 {
		t.Fatal("huge page with CIT below scaled threshold rejected")
	}
}

func TestDrainQueueRateLimit(t *testing.T) {
	opt := quietOptions()
	opt.RateLimitMBps = 1 // 1 MB/s; page = 4096 B at CostScale 1
	c, k := attach(t, opt)
	// Queue 10 pages manually.
	for i := 0; i < 10; i++ {
		pg := k.addPage(mem.SlowTier, 1)
		c.queue = append(c.queue, pg.ID)
	}
	// One 100 ms tick has budget 0.1 MB = 25 pages; all 10 drain.
	c.opt.MigrateTick = 100 * simclock.Millisecond
	c.drainQueue(k.clock.Now())
	if len(k.promotes) != 10 {
		t.Fatalf("promoted %d of 10 within budget", len(k.promotes))
	}

	// Now an extreme limit: budget below one page promotes nothing...
	c.rateLimitBps = 1000 // 100 B per tick < 4096
	pg := k.addPage(mem.SlowTier, 1)
	c.queue = append(c.queue, pg.ID)
	c.drainQueue(k.clock.Now())
	if len(k.promotes) != 10 {
		t.Fatalf("promotion happened with empty budget: %d", len(k.promotes))
	}
	if c.QueueLen() != 1 {
		t.Fatal("queue entry lost under empty budget")
	}
}

func TestDrainQueueSkipsStaleEntries(t *testing.T) {
	c, k := attach(t, quietOptions())
	pg := k.addPage(mem.SlowTier, 1)
	c.queue = append(c.queue, pg.ID)
	pg.Tier = mem.FastTier // already promoted by other means
	c.opt.MigrateTick = 100 * simclock.Millisecond
	c.drainQueue(k.clock.Now())
	if len(k.promotes) != 0 || c.QueueLen() != 0 {
		t.Fatal("stale queue entry not skipped")
	}
}

func TestDrainQueueRequeuesOnFailedMigration(t *testing.T) {
	c, k := attach(t, quietOptions())
	pg := k.addPage(mem.SlowTier, 1)
	c.queue = append(c.queue, pg.ID)
	k.promoteOK = func(*vm.Page) bool { return false } // migration bandwidth dry
	c.opt.MigrateTick = 100 * simclock.Millisecond
	c.drainQueue(k.clock.Now())
	if c.QueueLen() != 1 {
		t.Fatal("failed promotion dropped from queue")
	}
}

func TestSemiAutoThresholdUpdate(t *testing.T) {
	opt := quietOptions()
	opt.Tuning = TuneSemiAuto
	opt.RateLimitMBps = 100
	opt.DeltaStep = 0.5
	c, k := attach(t, opt)

	// The controller divides by the smoothed enqueue rate; prime the EMA
	// so one tick sees exactly 2x the limit: r = 0.5, TH *= 0.75.
	period := c.scan.Config().Period.Seconds()
	c.enqueueRateEMA = 2 * 100e6
	c.enqueuedBytes = 2 * 100e6 * period
	before := c.ThresholdMS()
	c.semiAutoTick(k.clock.Now())
	want := before * 0.75
	if math.Abs(c.ThresholdMS()-want) > 1e-6 {
		t.Fatalf("TH after over-enqueue: %v, want %v", c.ThresholdMS(), want)
	}

	// Smoothed rate at half the limit: r = 2, TH *= (0.5+1) = 1.5.
	c.enqueueRateEMA = 0.5 * 100e6
	c.enqueuedBytes = 0.5 * 100e6 * period
	before = c.ThresholdMS()
	c.semiAutoTick(k.clock.Now())
	if math.Abs(c.ThresholdMS()-before*1.5) > 1e-6 {
		t.Fatalf("TH after under-enqueue: %v", c.ThresholdMS())
	}

	// No enqueues at all: threshold opens up (r clamped to 2 → ×1.5).
	c.enqueueRateEMA = 0
	c.enqueuedBytes = 0
	before = c.ThresholdMS()
	c.semiAutoTick(k.clock.Now())
	if c.ThresholdMS() <= before {
		t.Fatal("threshold did not open with zero enqueue rate")
	}
}

func TestSemiAutoClamp(t *testing.T) {
	opt := quietOptions()
	opt.Tuning = TuneSemiAuto
	c, k := attach(t, opt)
	c.thresholdMS = minThresholdMS
	period := c.scan.Config().Period.Seconds()
	c.enqueueRateEMA = 1000 * c.rateLimitBps
	c.enqueuedBytes = 1000 * c.rateLimitBps * period // massive over-enqueue
	c.semiAutoTick(k.clock.Now())
	if c.ThresholdMS() < minThresholdMS {
		t.Fatalf("threshold below clamp: %v", c.ThresholdMS())
	}
	c.thresholdMS = maxThresholdMS
	c.enqueueRateEMA = 0
	c.enqueuedBytes = 0
	c.semiAutoTick(k.clock.Now())
	if c.ThresholdMS() > maxThresholdMS {
		t.Fatalf("threshold above clamp: %v", c.ThresholdMS())
	}
}

func TestThrashMonitorHalvesRateLimit(t *testing.T) {
	c, k := attach(t, quietOptions())
	before := c.rateLimitBps
	// 30% of promoted pages thrashed (> 20% threshold).
	c.promotedPages = 100
	c.thrashEvents = 30
	c.semiAutoTick(k.clock.Now())
	if math.Abs(c.rateLimitBps-before/2) > 1e-6 {
		t.Fatalf("rate limit %v, want halved %v", c.rateLimitBps, before/2)
	}
	// Below the threshold: unchanged.
	before = c.rateLimitBps
	c.promotedPages = 100
	c.thrashEvents = 10
	c.semiAutoTick(k.clock.Now())
	if c.rateLimitBps != before {
		t.Fatal("rate limit changed below thrash threshold")
	}
}

func TestThrashDetectionOnDemotedPage(t *testing.T) {
	c, k := attach(t, quietOptions())
	pg := k.addPage(mem.FastTier, 1)
	// Chrono observes the demotion (kernel or its own) via OnMigrated.
	k.Demote(pg)
	c.OnMigrated(pg, mem.FastTier, mem.SlowTier)
	if !pg.Flags.Has(vm.FlagDemoted) {
		t.Fatal("demoted flag not set")
	}
	if !pg.Flags.Has(vm.FlagProtNone) {
		t.Fatal("demoted page not immediately poisoned")
	}
	// The page re-qualifies quickly: a thrash event.
	k.advance(50 * simclock.Millisecond)
	k.fault(c, pg)
	if c.ThrashTotal != 1 {
		t.Fatalf("ThrashTotal=%d", c.ThrashTotal)
	}
	if pg.Flags.Has(vm.FlagDemoted) {
		t.Fatal("demoted flag not cleared after evaluation")
	}
}

func TestThrashMonitorDisabled(t *testing.T) {
	opt := quietOptions()
	opt.DisableThrashMonitor = true
	c, k := attach(t, opt)
	pg := k.addPage(mem.FastTier, 1)
	k.Demote(pg)
	c.OnMigrated(pg, mem.FastTier, mem.SlowTier)
	if pg.Flags.Has(vm.FlagDemoted) {
		t.Fatal("thrash monitor disabled but page flagged")
	}
}

func TestCITBuckets(t *testing.T) {
	c := New(Options{})
	cases := map[float64]int{
		0: 0, 0.5: 0, 1: 1, 1.9: 1, 2: 2, 3.9: 2, 4: 3, 1000: 10,
	}
	for cit, want := range cases {
		if got := c.citBucket(cit); got != want {
			t.Fatalf("citBucket(%v)=%d, want %d", cit, got, want)
		}
	}
	// Clamps into the last bucket.
	if got := c.citBucket(1e30); got != c.opt.BBuckets-1 {
		t.Fatalf("huge CIT bucket %d", got)
	}
	if c.BucketUpperMS(3) != 8 {
		t.Fatalf("BucketUpperMS(3)=%v", c.BucketUpperMS(3))
	}
}

func TestProbeTwoRoundMax(t *testing.T) {
	c, k := attach(t, quietOptions())
	pg := k.addPage(mem.SlowTier, 1)
	pg.Flags |= vm.FlagProbed
	pg.Meta2 = 0
	k.Protect(pg)

	// Round 1: CIT 10 ms; page must be re-poisoned.
	k.advance(10 * simclock.Millisecond)
	k.fault(c, pg)
	if !pg.Flags.Has(vm.FlagProbed) || !pg.Flags.Has(vm.FlagProtNone) {
		t.Fatal("probe round 1 did not re-poison")
	}
	if c.DCSCSamples != 0 {
		t.Fatal("sample recorded after one round")
	}

	// Round 2: CIT 40 ms; max(10, 40) = 40 ms lands in bucket 6.
	k.advance(40 * simclock.Millisecond)
	k.fault(c, pg)
	if c.DCSCSamples != 1 {
		t.Fatalf("DCSCSamples=%d", c.DCSCSamples)
	}
	if pg.Flags.Has(vm.FlagProbed) {
		t.Fatal("probe flag not cleared after round 2")
	}
	hm := c.HeatMap(mem.SlowTier)
	if hm[6] != 1 { // 40ms in [32,64) = bucket 6
		t.Fatalf("heat map: %v", hm[:8])
	}
}

func TestProbeHugeRedistribution(t *testing.T) {
	c, _ := attach(t, quietOptions())
	huge := &vm.Page{ID: 99, Size: 64, Flags: vm.FlagHuge, Tier: mem.SlowTier, Proc: nil}
	// A 64-page huge sample at bucket 2 (CIT 2ms) counts as 64 pages at
	// bucket 2+6 (= log2(64)).
	c.recordSample(huge, 2)
	hm := c.HeatMap(mem.SlowTier)
	if hm[8] != 64 {
		t.Fatalf("huge redistribution: %v", hm[:12])
	}
}

func TestProbeExpiry(t *testing.T) {
	c, k := attach(t, quietOptions())
	pg := k.addPage(mem.SlowTier, 1)
	pg.Flags |= vm.FlagProbed
	k.Protect(pg)
	c.probes = append(c.probes, probe{id: pg.ID, stamp: k.clock.Now()})

	// Not yet expired.
	k.advance(probeExpiry / 2)
	c.expireProbes(k.clock.Now())
	if len(c.probes) != 1 || c.DCSCSamples != 0 {
		t.Fatal("probe expired early")
	}

	// Expired: recorded as cold, flag cleared, unprotected.
	k.advance(probeExpiry)
	c.expireProbes(k.clock.Now())
	if len(c.probes) != 0 {
		t.Fatal("expired probe not removed")
	}
	if c.DCSCSamples != 1 {
		t.Fatal("expired probe not recorded")
	}
	if pg.Flags.Has(vm.FlagProbed) || pg.Flags.Has(vm.FlagProtNone) {
		t.Fatal("expired probe left flags set")
	}
}

func TestDCSCTuneOverlap(t *testing.T) {
	c, k := attach(t, quietOptions())
	// Occupy the fake node: 1000 fast used, 3000 slow used.
	k.node.Alloc(mem.FastTier, 1000-k.node.Used(mem.FastTier))
	k.node.Alloc(mem.SlowTier, 3000-k.node.Used(mem.SlowTier))

	// Synthetic heat maps: fast tier all hot (bucket 2); slow tier has
	// 600-page-equivalent hot mass at bucket 2 and cold mass at bucket 20.
	c.heat[mem.FastTier][2] = 100
	c.samples[mem.FastTier] = 100
	c.heat[mem.SlowTier][2] = 20 // 20/100 of 3000 = 600 hot-in-slow
	c.heat[mem.SlowTier][20] = 80
	c.samples[mem.SlowTier] = 100

	c.dcscTune(k.clock.Now())

	// Cumulative crosses fastCap (1000) inside bucket 2 (1000 fast + 600
	// slow): fraction = 1000/1600, threshold interpolates geometrically
	// from the bucket's lower bound: 2 × 2^(1000/1600) ms.
	want := 2 * math.Pow(2, 1000.0/1600)
	if got := c.ThresholdMS(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("threshold %v, want %v", got, want)
	}
	// Misplacement: 600 pages × 4096 B / 60 s ≈ 41 kB/s, smoothed 50/50
	// with the previous 100 MB/s.
	wantLimit := 0.5*100e6 + 0.5*(600*4096/c.scan.Config().Period.Seconds())
	if math.Abs(c.rateLimitBps-wantLimit)/wantLimit > 1e-6 {
		t.Fatalf("rate limit %v, want %v", c.rateLimitBps, wantLimit)
	}
	// Heat maps decayed.
	if c.samples[mem.FastTier] != 50 {
		t.Fatalf("samples not decayed: %v", c.samples[mem.FastTier])
	}
}

func TestDCSCTuneNoSamples(t *testing.T) {
	c, k := attach(t, quietOptions())
	before := c.ThresholdMS()
	c.dcscTune(k.clock.Now())
	if c.ThresholdMS() != before {
		t.Fatal("tuning without samples changed the threshold")
	}
}

func TestStatScanMarksVictims(t *testing.T) {
	opt := quietOptions()
	opt.PVictim = 0.5
	c, k := attach(t, opt)
	for i := 0; i < 99; i++ {
		k.addPage(mem.SlowTier, 1)
	}
	c.statScan(k.clock.Now())
	probed := 0
	for _, pg := range k.pages {
		if pg.Flags.Has(vm.FlagProbed) {
			probed++
			if !pg.Flags.Has(vm.FlagProtNone) {
				t.Fatal("probed page not poisoned")
			}
		}
	}
	if probed == 0 || probed > 50 {
		t.Fatalf("probed %d of 100 pages at P=0.5", probed)
	}
	if len(c.probes) != probed {
		t.Fatalf("probe list %d != probed %d", len(c.probes), probed)
	}
}

func TestDemotionTickProWatermark(t *testing.T) {
	c, k := attach(t, quietOptions())
	// Fill fast tier completely.
	k.node.Alloc(mem.FastTier, k.node.Free(mem.FastTier))
	var victims []*vm.Page
	for i := 0; i < 50; i++ {
		pg := k.addPage(mem.SlowTier, 1) // backing store for realism
		pg.Tier = mem.FastTier           // pretend they're fast-resident
		victims = append(victims, pg)
	}
	k.inactiveTail = victims
	k.demoteOK = func(pg *vm.Page) bool {
		// fake Demote moves accounting from fast; but we allocated them
		// in slow, so just flip the tier.
		pg.Tier = mem.SlowTier
		k.node.FreePages(mem.FastTier, 1)
		k.demotes = append(k.demotes, pg)
		return false // skip fakeKernel's own move
	}
	c.demotionTick(k.clock.Now())
	pro := k.node.Watermarks(mem.FastTier).Pro
	high := k.node.Watermarks(mem.FastTier).High
	if pro <= high {
		t.Fatalf("pro watermark %d not raised above high %d", pro, high)
	}
	if len(k.demotes) == 0 {
		t.Fatal("no demotions under watermark pressure")
	}
}

func TestSysctlRegistration(t *testing.T) {
	c, k := attach(t, quietOptions())
	if err := k.Sysctl().Set("chrono/cit_threshold_ms", "250"); err != nil {
		t.Fatal(err)
	}
	if c.ThresholdMS() != 250 {
		t.Fatalf("sysctl write not applied: %v", c.ThresholdMS())
	}
	if err := k.Sysctl().Set("chrono/cit_threshold_ms", "-5"); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestHistoriesRecorded(t *testing.T) {
	c, _ := attach(t, quietOptions())
	if c.ThresholdHist.Len() == 0 || c.RateLimitHist.Len() == 0 {
		t.Fatal("initial history points missing")
	}
}

func TestQueueBoundDropsOverflow(t *testing.T) {
	opt := quietOptions()
	opt.RateLimitMBps = 0.001 // tiny: the queue bound floors at 64
	// A realistic scan period so the queue bound (rate × period) is
	// small; the test stays well inside the first period.
	opt.Scan = scan.Config{Period: simclock.Minute, StepPages: 1}
	c, k := attach(t, opt)
	for i := 0; i < 200; i++ {
		pg := k.addPage(mem.SlowTier, 1)
		k.Protect(pg)
		k.advance(10 * simclock.Millisecond)
		k.fault(c, pg) // round 1
		k.Protect(pg)
		k.advance(10 * simclock.Millisecond)
		k.fault(c, pg) // round 2: submission
	}
	if c.QueueLen() > c.maxQueueLen() {
		t.Fatalf("queue %d exceeds bound %d", c.QueueLen(), c.maxQueueLen())
	}
	if c.QueueDropped == 0 {
		t.Fatal("no submissions dropped despite overflow")
	}
	if c.Enqueued != 200 {
		t.Fatalf("Enqueued=%d; demand accounting must include drops", c.Enqueued)
	}
}

func TestLargeFoldThresholdScaling(t *testing.T) {
	// §3.4's 1 GB case: TH_1GB = TH_4KB / (512*512). At any fold the
	// effective threshold divides by the page size.
	c, k := attach(t, quietOptions())
	big := k.addPage(mem.SlowTier, 512)
	want := c.ThresholdMS() / 512
	if got := c.effectiveThresholdMS(big); math.Abs(got-want) > 1e-12 {
		t.Fatalf("fold-512 threshold %v, want %v", got, want)
	}
}

func TestLargeFoldBucketRedistribution(t *testing.T) {
	c, _ := attach(t, quietOptions())
	big := &vm.Page{ID: 7, Size: 512, Flags: vm.FlagHuge, Tier: mem.SlowTier}
	// Bucket 3 + log2(512) = bucket 12, weight 512.
	c.recordSample(big, 5) // 5 ms -> bucket 3
	hm := c.HeatMap(mem.SlowTier)
	if hm[12] != 512 {
		t.Fatalf("fold-512 redistribution: %v", hm[10:14])
	}
}

func TestExpireCandidates(t *testing.T) {
	c, k := attach(t, quietOptions())
	pg := k.addPage(mem.SlowTier, 1)
	k.Protect(pg)
	k.advance(20 * simclock.Millisecond)
	k.fault(c, pg) // becomes a candidate
	if c.Candidates() != 1 {
		t.Fatal("setup: no candidate")
	}
	// Within two scan periods: kept.
	k.advance(c.scan.Config().Period)
	c.expireCandidates(k.clock.Now())
	if c.Candidates() != 1 {
		t.Fatal("candidate expired early")
	}
	// Beyond two scan periods: dropped and flag cleared.
	k.advance(2 * c.scan.Config().Period)
	c.expireCandidates(k.clock.Now())
	if c.Candidates() != 0 {
		t.Fatal("stale candidate not expired")
	}
	if pg.Flags.Has(vm.FlagCandidate) {
		t.Fatal("FlagCandidate not cleared on expiry")
	}
}

func TestDemotionGapFollowsRateLimit(t *testing.T) {
	c, k := attach(t, quietOptions())
	// gap = 2 * scanPeriod * rateLimit / pageSize, bounded by cap/8.
	c.rateLimitBps = 50e6 // at CostScale 1, pageSize 4096
	c.demotionTick(k.clock.Now())
	wm := k.node.Watermarks(mem.FastTier)
	wantGap := int64(2 * c.scan.Config().Period.Seconds() * 50e6 / 4096)
	maxGap := k.node.Capacity(mem.FastTier) / 8
	if wantGap > maxGap {
		wantGap = maxGap
	}
	if wm.Pro != wm.High+wantGap {
		t.Fatalf("pro watermark gap %d, want %d", wm.Pro-wm.High, wantGap)
	}
}

func TestCITObserverReceivesScaledValues(t *testing.T) {
	c, k := attach(t, quietOptions())
	pg := k.addPage(mem.SlowTier, 1)
	var seen []float64
	c.SetCITObserver(func(_ *vm.Page, citMS float64) { seen = append(seen, citMS) })
	k.Protect(pg)
	k.advance(123 * simclock.Millisecond)
	k.fault(c, pg)
	// fakeKernel's CostScale is 1, so the observed CIT equals the gap.
	if len(seen) != 1 || math.Abs(seen[0]-123) > 1e-9 {
		t.Fatalf("observer saw %v, want [123]", seen)
	}
}

func TestThrashHalvingRespectsFloor(t *testing.T) {
	c, k := attach(t, quietOptions())
	c.rateLimitBps = 20e6
	for i := 0; i < 10; i++ {
		c.promotedPages = 100
		c.thrashEvents = 90
		c.semiAutoTick(k.clock.Now())
	}
	if c.rateLimitBps < 16e6 {
		t.Fatalf("rate limit %v below the floor", c.rateLimitBps)
	}
}

func TestNumaTieringToggleDisablesChrono(t *testing.T) {
	opt := quietOptions()
	opt.Scan = scan.Config{Period: simclock.Second, StepPages: 4}
	c, k := attach(t, opt)
	var enabled int64 = 1
	k.Sysctl().Int64("kernel/numa_tiering", "toggle", &enabled, nil, nil)
	for i := 0; i < 8; i++ {
		k.addPage(mem.SlowTier, 1)
	}
	// Disabled: the ticking scan must not poison anything.
	enabled = 0
	k.advance(3 * simclock.Second)
	if len(k.protects) != 0 {
		t.Fatalf("%d pages poisoned while numa_tiering=0", len(k.protects))
	}
	// Re-enabled: scanning resumes.
	enabled = 1
	k.advance(3 * simclock.Second)
	if len(k.protects) == 0 {
		t.Fatal("scan did not resume after numa_tiering=1")
	}
	_ = c
}
