package core

import (
	"math"
	"testing"
	"testing/quick"

	"chrono/internal/rng"
	"chrono/internal/stats"
)

func TestEstimatorsUnbiased(t *testing.T) {
	r := rng.New(42)
	const t0 = 2.0
	const trials = 50000
	for _, n := range []int{1, 2, 3, 5} {
		var meanSum, maxSum float64
		for i := 0; i < trials; i++ {
			m, mx := EstimatorTrial(r, t0, n)
			meanSum += m
			maxSum += mx
		}
		if got := meanSum / trials; math.Abs(got-t0)/t0 > 0.02 {
			t.Fatalf("n=%d: mean estimator biased: %v", n, got)
		}
		if got := maxSum / trials; math.Abs(got-t0)/t0 > 0.02 {
			t.Fatalf("n=%d: max estimator biased: %v", n, got)
		}
	}
}

func TestClosedFormVariances(t *testing.T) {
	// Appendix B eq. 3 and 6 at T0 = 1.
	if v := MeanEstimatorVariance(1, 3); math.Abs(v-1.0/9) > 1e-12 {
		t.Fatalf("mean var n=3: %v", v)
	}
	if v := MaxEstimatorVariance(1, 3); math.Abs(v-1.0/15) > 1e-12 {
		t.Fatalf("max var n=3: %v", v)
	}
	// The max estimator dominates for every n >= 2 (B.1's conclusion).
	for n := 2; n <= 20; n++ {
		if MaxEstimatorVariance(1, n) >= MeanEstimatorVariance(1, n) {
			t.Fatalf("max estimator not better at n=%d", n)
		}
	}
	// Equal at n = 1 (both reduce to a single-sample scaling).
	if MaxEstimatorVariance(1, 1) != MeanEstimatorVariance(1, 1) {
		t.Fatal("n=1 variances should coincide")
	}
}

func TestMonteCarloMatchesClosedForm(t *testing.T) {
	r := rng.New(7)
	const t0 = 1.0
	const trials = 100000
	for _, n := range []int{2, 4} {
		means := make([]float64, trials)
		maxes := make([]float64, trials)
		for i := range means {
			means[i], maxes[i] = EstimatorTrial(r, t0, n)
		}
		mv, xv := stats.Variance(means), stats.Variance(maxes)
		if math.Abs(mv-MeanEstimatorVariance(t0, n))/MeanEstimatorVariance(t0, n) > 0.05 {
			t.Fatalf("n=%d mean var MC %v vs closed %v", n, mv, MeanEstimatorVariance(t0, n))
		}
		if math.Abs(xv-MaxEstimatorVariance(t0, n))/MaxEstimatorVariance(t0, n) > 0.05 {
			t.Fatalf("n=%d max var MC %v vs closed %v", n, xv, MaxEstimatorVariance(t0, n))
		}
	}
}

func TestHotProbability(t *testing.T) {
	// Pages hotter than the threshold are always classified hot (eq. 7).
	if HotProbability(0.5, 3) != 1 {
		t.Fatal("hot page probability != 1")
	}
	// Colder pages: (1/x)^n.
	if got := HotProbability(2, 3); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("P(x=2,n=3)=%v", got)
	}
	// More rounds filter colder pages harder.
	if HotProbability(2, 3) >= HotProbability(2, 2) {
		t.Fatal("more rounds should reduce cold misclassification")
	}
}

func TestUniformEfficiencyPeaksAtTwo(t *testing.T) {
	// Eq. 12: E(n) = (n-1)/n², maximal at n = 2.
	if got := UniformEfficiency(2); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("E(2)=%v", got)
	}
	for n := 1; n <= 10; n++ {
		if n != 2 && UniformEfficiency(n) >= UniformEfficiency(2) {
			t.Fatalf("E(%d)=%v >= E(2)", n, UniformEfficiency(n))
		}
	}
	if UniformEfficiency(0) != 0 {
		t.Fatal("E(0) should be 0")
	}
}

func TestHDensityShape(t *testing.T) {
	// h is non-negative, 0 at x<=0, and for small alpha the cold region
	// (x>1) is sparser relative to its peak than for alpha=1.
	if HDensity(0, 0.5) != 0 || HDensity(-1, 0.5) != 0 {
		t.Fatal("h outside domain should be 0")
	}
	if HDensity(3, 0.3)/HDensity(1, 0.3) >= HDensity(3, 1)/HDensity(1, 1) {
		t.Fatal("small alpha should decay faster in the cold region")
	}
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		for _, a := range []float64{0.25, 0.5, 1} {
			if HDensity(x, a) < 0 {
				t.Fatalf("negative density at x=%v a=%v", x, a)
			}
		}
	}
}

func TestSelectionStatsAlphaOne(t *testing.T) {
	// For alpha = 1, h ≡ 1 on (0,1] and the closed form applies:
	// S(n) = 1/(n-1) for the pure h(x)=1 tail.
	for _, n := range []int{2, 3, 4, 5} {
		_, _, e := SelectionStats(1, n)
		want := UniformEfficiency(n)
		if math.Abs(e-want)/want > 0.05 {
			t.Fatalf("E_h(1)(%d)=%v, closed form %v", n, e, want)
		}
	}
}

func TestBestRoundsIsTwo(t *testing.T) {
	// Figure B2: n = 2 wins across the realistic alpha range.
	for _, alpha := range []float64{0.3, 0.5, 0.7, 0.9, 1.0} {
		if got := BestRounds(alpha, 7); got != 2 {
			t.Fatalf("BestRounds(alpha=%v)=%d, want 2", alpha, got)
		}
	}
}

func TestSelectionEfficiencyDecreasing(t *testing.T) {
	// Beyond n=2 efficiency declines monotonically.
	prev := math.Inf(1)
	for n := 2; n <= 7; n++ {
		_, _, e := SelectionStats(0.6, n)
		if e >= prev {
			t.Fatalf("efficiency not decreasing at n=%d", n)
		}
		prev = e
	}
}

// TestPropertyMaxEstimateBounds: the max estimate is always >= the true
// max sample and the mean estimate is within [0, 2·T0].
func TestPropertyMaxEstimateBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		r := rng.New(seed)
		const t0 = 1.0
		mean, max := EstimatorTrial(r, t0, n)
		return mean >= 0 && mean <= 2*t0 && max >= 0 && max <= (float64(n)+1)/float64(n)*t0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRealHotRatioInUnit: R_f(n) is a valid probability for any
// density parameter.
func TestPropertyRealHotRatioInUnit(t *testing.T) {
	f := func(aRaw, nRaw uint8) bool {
		alpha := 0.25 + float64(aRaw%76)/100 // [0.25, 1.0]
		n := int(nRaw%7) + 1
		s, r, e := SelectionStats(alpha, n)
		return s >= 0 && r > 0 && r <= 1 && e > 0 && e <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
