package core

import (
	"chrono/internal/mem"
	"chrono/internal/pebs"
	"chrono/internal/policy"
	"chrono/internal/policy/scan"
	"chrono/internal/rng"
	"chrono/internal/simclock"
	"chrono/internal/sysctl"
	"chrono/internal/units"
	"chrono/internal/vm"
)

// fakeKernel is a scriptable policy.Kernel for white-box Chrono tests. It
// uses CostScale 1, so CIT values equal raw poison-to-fault gaps.
type fakeKernel struct {
	clock *simclock.Clock
	node  *mem.Node
	table *sysctl.Table
	r     *rng.Source

	procs   []*vm.Process
	pages   []*vm.Page
	nextVPN uint64

	protects   []*vm.Page
	unprotects []*vm.Page
	promotes   []*vm.Page
	demotes    []*vm.Page

	// promoteOK / demoteOK script migration success (default true).
	promoteOK func(*vm.Page) bool
	demoteOK  func(*vm.Page) bool
	// transient scripts TryPromote/TryDemote transient aborts: when it
	// returns true the attempt fails with MigrateTransient before any
	// state changes (default: never).
	transient func(*vm.Page) bool
	// inactiveTail scripts the reclaim candidate list.
	inactiveTail []*vm.Page
	// accessed scripts the accessed-bit answer.
	accessed func(*vm.Page) bool

	kernelNS float64
}

func newFakeKernel() *fakeKernel {
	return &fakeKernel{
		clock: simclock.New(),
		node:  mem.NewNode(mem.Config{FastPages: 1000, SlowPages: 3000}),
		table: sysctl.NewTable(),
		r:     rng.New(1),
	}
}

// addPage registers a page resident in the given tier.
func (k *fakeKernel) addPage(tier mem.TierID, size int32) *vm.Page {
	if len(k.procs) == 0 {
		p := vm.NewProcess(1, "fake", 4096)
		k.procs = append(k.procs, p)
		k.nextVPN = p.VMAs()[0].Start
	}
	// Pages pack contiguously by their actual size: the dense page table
	// rejects VPNs outside the VMA, and the scan-pacing tests assume the
	// 4096-page address space (one full scan pass per ~Period).
	pg := &vm.Page{
		ID:   int64(len(k.pages)),
		VPN:  k.nextVPN,
		Proc: k.procs[0],
		Tier: tier,
		Size: size,
	}
	k.nextVPN += uint64(size)
	if size > 1 {
		pg.Flags |= vm.FlagHuge
	}
	k.node.Alloc(tier, int64(size))
	k.pages = append(k.pages, pg)
	k.procs[0].InsertPage(pg)
	return pg
}

func (k *fakeKernel) Clock() *simclock.Clock       { return k.clock }
func (k *fakeKernel) Node() *mem.Node              { return k.node }
func (k *fakeKernel) Processes() []*vm.Process     { return k.procs }
func (k *fakeKernel) Pages() []*vm.Page            { return k.pages }
func (k *fakeKernel) RNG() *rng.Source             { return k.r }
func (k *fakeKernel) Sysctl() *sysctl.Table        { return k.table }
func (k *fakeKernel) CostScale() float64           { return 1 }
func (k *fakeKernel) HugeFactor() int              { return 64 }
func (k *fakeKernel) ChargeKernel(ns units.NS)     { k.kernelNS += float64(ns) }
func (k *fakeKernel) CountContextSwitches(n int64) {}
func (k *fakeKernel) FastFree() int64              { return k.node.Free(mem.FastTier) }

func (k *fakeKernel) Protect(pg *vm.Page) {
	pg.Flags |= vm.FlagProtNone
	pg.ProtTS = k.clock.Now()
	k.protects = append(k.protects, pg)
}

func (k *fakeKernel) Unprotect(pg *vm.Page) {
	pg.Flags &^= vm.FlagProtNone
	k.unprotects = append(k.unprotects, pg)
}

func (k *fakeKernel) AccessedTestAndClear(pg *vm.Page) bool {
	if k.accessed != nil {
		return k.accessed(pg)
	}
	return false
}

func (k *fakeKernel) Promote(pg *vm.Page) bool {
	if k.promoteOK != nil && !k.promoteOK(pg) {
		return false
	}
	if pg.Tier == mem.FastTier {
		return true
	}
	if _, err := k.node.MovePages(mem.SlowTier, mem.FastTier, int64(pg.Size)); err != nil {
		return false
	}
	pg.Tier = mem.FastTier
	k.promotes = append(k.promotes, pg)
	return true
}

func (k *fakeKernel) Demote(pg *vm.Page) bool {
	if k.demoteOK != nil && !k.demoteOK(pg) {
		return false
	}
	if pg.Tier == mem.SlowTier {
		return true
	}
	if _, err := k.node.MovePages(mem.FastTier, mem.SlowTier, int64(pg.Size)); err != nil {
		return false
	}
	pg.Tier = mem.SlowTier
	pg.DemoteTS = k.clock.Now()
	k.demotes = append(k.demotes, pg)
	return true
}

func (k *fakeKernel) TryPromote(pg *vm.Page) policy.MigrateResult {
	if k.transient != nil && k.transient(pg) {
		return policy.MigrateTransient
	}
	if k.Promote(pg) {
		return policy.MigrateOK
	}
	return policy.MigrateNoCapacity
}

func (k *fakeKernel) TryDemote(pg *vm.Page) policy.MigrateResult {
	if k.transient != nil && k.transient(pg) {
		return policy.MigrateTransient
	}
	if k.Demote(pg) {
		return policy.MigrateOK
	}
	return policy.MigrateNoCapacity
}

func (k *fakeKernel) SplitHuge(pg *vm.Page) []*vm.Page { return nil }

func (k *fakeKernel) HugeUtilization(pg *vm.Page) float64 { return 1 }

func (k *fakeKernel) SamplePEBS(s *pebs.Sampler, period units.Sec) int { return 0 }

func (k *fakeKernel) InactiveTail(tier mem.TierID, n int) []*vm.Page {
	if n > len(k.inactiveTail) {
		n = len(k.inactiveTail)
	}
	return k.inactiveTail[:n]
}

// fault simulates the engine's fault delivery for a protected page at the
// current virtual time: clear the poison and invoke the policy.
func (k *fakeKernel) fault(c *Chrono, pg *vm.Page) {
	pg.Flags &^= vm.FlagProtNone
	pg.LastFault = k.clock.Now()
	c.OnFault(pg, k.clock.Now())
}

// advance moves the fake clock forward, firing any events on the way.
// Tests that need inert tickers configure Chrono with very long periods.
func (k *fakeKernel) advance(d simclock.Duration) {
	k.clock.RunUntil(k.clock.Now() + d)
}

// quietOptions returns Options whose periodic work is pushed far beyond
// any test horizon, so white-box tests drive Chrono's handlers directly.
func quietOptions() Options {
	const far = 1 << 50 // ~13 virtual days
	return Options{
		Scan:           scan.Config{Period: far, StepPages: 1},
		StatPeriod:     far,
		TunePeriod:     far,
		MigrateTick:    far,
		DemotionPeriod: far,
	}
}
