package core

// Chrono's checkpoint support: serialization of every mutable field that
// influences future decisions — the live threshold/rate-limit pair, the
// candidate filter, the promotion queue and its retry counts, the DCSC
// heat maps and outstanding probes, the tuning histories, and the
// Ticking-scan walker positions. Configuration (Options after
// withDefaults) is rebuilt by New/Attach and not serialized, except for
// the three fields exposed as writable sysctls.

import (
	"encoding/json"
	"fmt"
	"sort"

	"chrono/internal/mem"
	"chrono/internal/policy/scan"
	"chrono/internal/simclock"
	"chrono/internal/xarray"
)

// candState is one candidate-filter entry (XArray key order).
type candState struct {
	ID      int64             `json:"id"`
	Passes  int               `json:"passes"`
	LastCIT simclock.Duration `json:"last_cit"`
	Stamp   simclock.Time     `json:"stamp"`
}

// retryState is one promotion-queue retry counter.
type retryState struct {
	ID int64 `json:"id"`
	N  int8  `json:"n"`
}

// probeState is one outstanding DCSC probe victim.
type probeState struct {
	ID    int64         `json:"id"`
	Stamp simclock.Time `json:"stamp"`
}

// seriesState is a parameter-history series (Figure 10b/c).
type seriesState struct {
	T []float64 `json:"t,omitempty"`
	V []float64 `json:"v,omitempty"`
}

// checkpointState is Chrono's serializable dynamic state.
type checkpointState struct {
	ThresholdMS  float64 `json:"threshold_ms"`
	RateLimitBps float64 `json:"rate_limit_bps"`

	// Sysctl-writable option fields (everything else in Options is
	// construction-time configuration).
	DeltaStep       float64 `json:"delta_step"`
	PVictim         float64 `json:"p_victim"`
	ThrashThreshold float64 `json:"thrash_threshold"`

	Cands []candState `json:"cands,omitempty"`
	Queue []int64     `json:"queue,omitempty"`

	EnqueuedBytes  float64 `json:"enqueued_bytes"`
	EnqueueRateEMA float64 `json:"enqueue_rate_ema"`
	PromotedPages  int64   `json:"promoted_pages"`
	ThrashEvents   int64   `json:"thrash_events"`

	Retries []retryState `json:"retries,omitempty"`

	Heat    [mem.NumTiers][]float64 `json:"heat"`
	Samples [mem.NumTiers]float64   `json:"samples"`
	Probes  []probeState            `json:"probes,omitempty"`

	ThresholdHist seriesState `json:"threshold_hist"`
	RateLimitHist seriesState `json:"rate_limit_hist"`

	Enqueued     int64 `json:"enqueued"`
	Promoted     int64 `json:"promoted"`
	Demoted      int64 `json:"demoted"`
	ThrashTotal  int64 `json:"thrash_total"`
	DCSCSamples  int64 `json:"dcsc_samples"`
	FilteredOut  int64 `json:"filtered_out"`
	QueueDropped int64 `json:"queue_dropped"`
	RetryDropped int64 `json:"retry_dropped"`

	Scan scan.SetState `json:"scan"`
}

// CheckpointState implements policy.Checkpointable.
func (c *Chrono) CheckpointState() (any, error) {
	st := checkpointState{
		ThresholdMS:     c.thresholdMS,
		RateLimitBps:    c.rateLimitBps,
		DeltaStep:       c.opt.DeltaStep,
		PVictim:         c.opt.PVictim,
		ThrashThreshold: c.opt.ThrashThreshold,
		Queue:           append([]int64(nil), c.queue...),
		EnqueuedBytes:   c.enqueuedBytes,
		EnqueueRateEMA:  c.enqueueRateEMA,
		PromotedPages:   c.promotedPages,
		ThrashEvents:    c.thrashEvents,
		Samples:         c.samples,
		ThresholdHist: seriesState{
			T: append([]float64(nil), c.ThresholdHist.T...),
			V: append([]float64(nil), c.ThresholdHist.V...),
		},
		RateLimitHist: seriesState{
			T: append([]float64(nil), c.RateLimitHist.T...),
			V: append([]float64(nil), c.RateLimitHist.V...),
		},
		Enqueued:     c.Enqueued,
		Promoted:     c.Promoted,
		Demoted:      c.Demoted,
		ThrashTotal:  c.ThrashTotal,
		DCSCSamples:  c.DCSCSamples,
		FilteredOut:  c.FilteredOut,
		QueueDropped: c.QueueDropped,
		RetryDropped: c.RetryDropped,
		Scan:         c.scan.State(),
	}
	for t := range c.heat {
		st.Heat[t] = append([]float64(nil), c.heat[t]...)
	}
	// XArray.Range visits keys in ascending order — deterministic bytes.
	c.cands.Range(func(key uint64, v any) bool {
		e := v.(*candidate)
		st.Cands = append(st.Cands, candState{
			ID: int64(key), Passes: e.passes, LastCIT: e.lastCIT, Stamp: e.stamp,
		})
		return true
	})
	// The retries map is keyed-access-only in steady state; serialization
	// is the one place it is enumerated, sorted by page ID.
	//chrono:ordered-irrelevant keys are sorted immediately below
	for id, n := range c.retries {
		st.Retries = append(st.Retries, retryState{ID: id, N: n})
	}
	sort.Slice(st.Retries, func(i, j int) bool { return st.Retries[i].ID < st.Retries[j].ID })
	for _, pr := range c.probes {
		st.Probes = append(st.Probes, probeState{ID: pr.id, Stamp: pr.stamp})
	}
	return st, nil
}

// RestoreCheckpoint implements policy.Checkpointable: overlay a captured
// state onto a freshly Attached Chrono built with the same Options.
func (c *Chrono) RestoreCheckpoint(data []byte) error {
	var st checkpointState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	for t := range st.Heat {
		if len(st.Heat[t]) != c.opt.BBuckets {
			return fmt.Errorf("core: restore: heat map tier %d has %d buckets, configured %d",
				t, len(st.Heat[t]), c.opt.BBuckets)
		}
	}
	c.thresholdMS = st.ThresholdMS
	c.rateLimitBps = st.RateLimitBps
	c.opt.DeltaStep = st.DeltaStep
	c.opt.PVictim = st.PVictim
	c.opt.ThrashThreshold = st.ThrashThreshold
	c.queue = append(c.queue[:0], st.Queue...)
	c.enqueuedBytes = st.EnqueuedBytes
	c.enqueueRateEMA = st.EnqueueRateEMA
	c.promotedPages = st.PromotedPages
	c.thrashEvents = st.ThrashEvents
	c.samples = st.Samples
	for t := range c.heat {
		copy(c.heat[t], st.Heat[t])
	}
	c.cands = &xarray.XArray{}
	for _, cs := range st.Cands {
		c.cands.Store(uint64(cs.ID), &candidate{passes: cs.Passes, lastCIT: cs.LastCIT, stamp: cs.Stamp})
	}
	c.retries = make(map[int64]int8, len(st.Retries))
	for _, r := range st.Retries {
		c.retries[r.ID] = r.N
	}
	c.probes = c.probes[:0]
	for _, pr := range st.Probes {
		c.probes = append(c.probes, probe{id: pr.ID, stamp: pr.Stamp})
	}
	c.ThresholdHist.T = append([]float64(nil), st.ThresholdHist.T...)
	c.ThresholdHist.V = append([]float64(nil), st.ThresholdHist.V...)
	c.RateLimitHist.T = append([]float64(nil), st.RateLimitHist.T...)
	c.RateLimitHist.V = append([]float64(nil), st.RateLimitHist.V...)
	c.Enqueued = st.Enqueued
	c.Promoted = st.Promoted
	c.Demoted = st.Demoted
	c.ThrashTotal = st.ThrashTotal
	c.DCSCSamples = st.DCSCSamples
	c.FilteredOut = st.FilteredOut
	c.QueueDropped = st.QueueDropped
	c.RetryDropped = st.RetryDropped
	return c.scan.SetState(st.Scan)
}
