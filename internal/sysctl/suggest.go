package sysctl

// "Did you mean" support for the parameter registry: tools that accept
// parameter paths from the command line (chronoctl, chronod's reconfigure
// API) reject unknown keys up front and offer the nearest registered
// paths instead of failing mid-run or, worse, proceeding silently.

import (
	"fmt"
	"sort"
	"strings"
)

// Suggest returns up to max registered paths closest to path, nearest
// first. Distance is Damerau-Levenshtein over the full path string, with
// two shortcuts that match how users actually mistype slash-separated
// keys: an exact component match ("rate_limit_bps" for
// "chrono/rate_limit_bps") and a prefix match both count as very close.
// Paths further than half their own length are omitted, so a completely
// unrelated key yields no suggestions rather than nonsense.
func (t *Table) Suggest(path string, max int) []string {
	if max <= 0 {
		return nil
	}
	type scored struct {
		path string
		dist int
	}
	var cands []scored
	for _, p := range t.All() {
		d := editDistance(path, p.Path)
		// Component and prefix matches are near-misses regardless of the
		// raw edit distance ("chrono/..." vs "core/..." style slips).
		if strings.HasSuffix(p.Path, "/"+path) || strings.HasPrefix(p.Path, path) {
			if d > 2 {
				d = 2
			}
		}
		limit := len(p.Path) / 2
		if limit < 2 {
			limit = 2
		}
		if d <= limit {
			cands = append(cands, scored{p.Path, d})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].path < cands[j].path
	})
	if len(cands) > max {
		cands = cands[:max]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.path
	}
	return out
}

// UnknownKeyError builds the error for a write to an unregistered path,
// including a did-you-mean list when any registered path is close.
func (t *Table) UnknownKeyError(path string) error {
	if sug := t.Suggest(path, 3); len(sug) > 0 {
		return fmt.Errorf("sysctl: unknown parameter %q (did you mean %s?)",
			path, strings.Join(sug, ", "))
	}
	return fmt.Errorf("sysctl: unknown parameter %q", path)
}

// editDistance is the Damerau-Levenshtein distance (insert, delete,
// substitute, transpose adjacent) between a and b.
func editDistance(a, b string) int {
	la, lb := len(a), len(b)
	prev2 := make([]int, lb+1)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // delete
			if v := cur[j-1] + 1; v < m { // insert
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitute
				m = v
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < m { // transpose
					m = v
				}
			}
			cur[j] = m
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}
