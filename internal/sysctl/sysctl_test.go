package sysctl

import (
	"errors"
	"strings"
	"testing"
)

func TestInt64Param(t *testing.T) {
	tb := NewTable()
	var v int64 = 5
	tb.Int64("a/b", "test", &v, nil, nil)
	got, err := tb.Get("a/b")
	if err != nil || got != "5" {
		t.Fatalf("Get=%q err=%v", got, err)
	}
	if err := tb.Set("a/b", "42"); err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("backing var %d", v)
	}
	if err := tb.Set("a/b", "xyz"); err == nil {
		t.Fatal("non-numeric write accepted")
	}
}

func TestInt64Validator(t *testing.T) {
	tb := NewTable()
	var v int64 = 1
	bad := errors.New("must be positive")
	tb.Int64("p", "test", &v, func(x int64) error {
		if x <= 0 {
			return bad
		}
		return nil
	}, nil)
	if err := tb.Set("p", "-3"); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Fatalf("validator not applied: %v", err)
	}
	if v != 1 {
		t.Fatal("rejected write mutated the value")
	}
}

func TestOnChangeHook(t *testing.T) {
	tb := NewTable()
	var v float64 = 1
	var seen float64
	tb.Float64("f", "test", &v, nil, func(nv float64) { seen = nv })
	if err := tb.Set("f", "2.5"); err != nil {
		t.Fatal(err)
	}
	if seen != 2.5 || v != 2.5 {
		t.Fatalf("hook saw %v, var %v", seen, v)
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	tb := NewTable()
	v := 0.003
	tb.Float64("x", "test", &v, nil, nil)
	got, _ := tb.Get("x")
	if got != "0.003" {
		t.Fatalf("Get=%q", got)
	}
}

func TestBoolParam(t *testing.T) {
	tb := NewTable()
	var v bool
	tb.Bool("flag", "test", &v, nil)
	// Ordered: the Get assertion below depends on the last value set.
	for _, c := range []struct {
		in   string
		want bool
	}{{"1", true}, {"true", true}, {"false", false}, {"0", false}} {
		if err := tb.Set("flag", c.in); err != nil {
			t.Fatal(err)
		}
		if v != c.want {
			t.Fatalf("Set(%q) -> %v", c.in, v)
		}
	}
	if err := tb.Set("flag", "maybe"); err == nil {
		t.Fatal("invalid boolean accepted")
	}
	got, _ := tb.Get("flag")
	if got != "0" {
		t.Fatalf("Get=%q", got)
	}
}

func TestUnknownParam(t *testing.T) {
	tb := NewTable()
	if _, err := tb.Get("nope"); err == nil {
		t.Fatal("Get of unknown param succeeded")
	}
	if err := tb.Set("nope", "1"); err == nil {
		t.Fatal("Set of unknown param succeeded")
	}
	if tb.Lookup("nope") != nil {
		t.Fatal("Lookup of unknown param non-nil")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	tb := NewTable()
	var v int64
	tb.Int64("dup", "one", &v, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	tb.Int64("dup", "two", &v, nil, nil)
}

func TestAllSorted(t *testing.T) {
	tb := NewTable()
	var a, b, c int64
	tb.Int64("zebra", "", &a, nil, nil)
	tb.Int64("alpha", "", &b, nil, nil)
	tb.Int64("mid", "", &c, nil, nil)
	all := tb.All()
	if len(all) != 3 {
		t.Fatalf("All returned %d", len(all))
	}
	if all[0].Path != "alpha" || all[1].Path != "mid" || all[2].Path != "zebra" {
		t.Fatalf("All not sorted: %v %v %v", all[0].Path, all[1].Path, all[2].Path)
	}
}

func TestZeroValueTable(t *testing.T) {
	var tb Table
	var v int64
	tb.Int64("works", "zero-value table", &v, nil, nil)
	if err := tb.Set("works", "7"); err != nil || v != 7 {
		t.Fatalf("zero-value table unusable: %v", err)
	}
}
