package sysctl

import (
	"strings"
	"testing"
)

func suggestTable() *Table {
	t := NewTable()
	var i int64
	var f float64
	var b bool
	t.Int64("chrono/scan_period_ms", "", &i, nil, nil)
	t.Int64("chrono/split_threshold", "", &i, nil, nil)
	t.Int64("chrono/rate_limit_bps", "", &i, nil, nil)
	t.Float64("chrono/hot_fraction", "", &f, nil, nil)
	t.Bool("kernel/numa_tiering", "", &b, nil)
	t.Int64("memtis/cooling_period", "", &i, nil, nil)
	return t
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"abcd", "abdc", 1},  // transposition
		{"ab", "ba", 1},      // transposition
		{"abc", "abcd", 1},   // insert
		{"abcd", "abc", 1},   // delete
		{"abc", "axc", 1},    // substitute
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSuggest(t *testing.T) {
	tab := suggestTable()
	cases := []struct {
		name  string
		path  string
		first string // expected nearest suggestion; "" = expect none at all
	}{
		{"typo one char", "chrono/scan_period_mss", "chrono/scan_period_ms"},
		{"transposed", "chrono/scan_periodm_s", "chrono/scan_period_ms"},
		{"missing prefix component", "scan_period_ms", "chrono/scan_period_ms"},
		{"bare component", "numa_tiering", "kernel/numa_tiering"},
		{"prefix only", "chrono/rate", "chrono/rate_limit_bps"},
		{"wrong namespace", "kernel/scan_period_ms", "chrono/scan_period_ms"},
		{"total nonsense", "zzzzzzzzzzzzzzzzzzzzzz", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := tab.Suggest(c.path, 3)
			if c.first == "" {
				if len(got) != 0 {
					t.Fatalf("Suggest(%q) = %v, want none", c.path, got)
				}
				return
			}
			if len(got) == 0 || got[0] != c.first {
				t.Fatalf("Suggest(%q) = %v, want first %q", c.path, got, c.first)
			}
		})
	}
}

func TestSuggestMaxAndOrder(t *testing.T) {
	tab := suggestTable()
	got := tab.Suggest("chrono/scan_period_ms", 2)
	if len(got) > 2 {
		t.Fatalf("Suggest max=2 returned %d entries: %v", len(got), got)
	}
	if len(got) == 0 || got[0] != "chrono/scan_period_ms" {
		t.Fatalf("exact path should be its own nearest suggestion, got %v", got)
	}
	if tab.Suggest("anything", 0) != nil {
		t.Fatal("Suggest max=0 should return nil")
	}
}

func TestSetUnknownKeyError(t *testing.T) {
	tab := suggestTable()
	err := tab.Set("chrono/scan_period", "5")
	if err == nil {
		t.Fatal("Set on unknown key must fail")
	}
	if !strings.Contains(err.Error(), "did you mean") ||
		!strings.Contains(err.Error(), "chrono/scan_period_ms") {
		t.Fatalf("error should carry did-you-mean hint, got: %v", err)
	}

	// A garbage key fails without nonsense suggestions.
	err = tab.Set("qqqqqqqqqqqqqqqqqqqqqqqq", "1")
	if err == nil {
		t.Fatal("Set on garbage key must fail")
	}
	if strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("garbage key should not get suggestions, got: %v", err)
	}

	if _, err := tab.Get("chrono/scan_period"); err == nil ||
		!strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("Get on near-miss key should carry hint, got: %v", err)
	}
}
