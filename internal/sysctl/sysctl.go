// Package sysctl is a small runtime parameter registry mirroring the
// procfs/sysctl controllers Chrono exposes (paper §4: "We have also
// developed procfs controllers that allow system managers to configure
// parameters manually as they need", plus the numa_tiering sysctl toggle).
//
// Components register typed parameters under slash-separated paths such as
// "kernel/numa_tiering" or "chrono/scan_period_ms"; tools (cmd/chronoctl)
// and tests read and write them by name. Writes go through optional
// validators and change hooks so a running simulation can react, exactly
// as the kernel handlers do.
package sysctl

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Param is one registered tunable.
type Param struct {
	Path        string
	Description string
	get         func() string
	set         func(string) error
}

// Get returns the parameter's current value rendered as a string.
func (p *Param) Get() string { return p.get() }

// Set parses and applies a new value.
func (p *Param) Set(v string) error { return p.set(v) }

// Table is a registry of parameters. The zero value is ready to use.
type Table struct {
	mu     sync.Mutex
	params map[string]*Param
}

// NewTable returns an empty registry.
func NewTable() *Table { return &Table{params: make(map[string]*Param)} }

func (t *Table) register(p *Param) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.params == nil {
		t.params = make(map[string]*Param)
	}
	if _, dup := t.params[p.Path]; dup {
		panic(fmt.Sprintf("sysctl: duplicate parameter %q", p.Path))
	}
	t.params[p.Path] = p
}

// Int64 registers an int64 parameter backed by ptr. The optional validate
// function rejects bad values; the optional onChange hook observes applied
// writes.
func (t *Table) Int64(path, desc string, ptr *int64, validate func(int64) error, onChange func(int64)) *Param {
	p := &Param{
		Path:        path,
		Description: desc,
		get:         func() string { return strconv.FormatInt(*ptr, 10) },
		set: func(s string) error {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return fmt.Errorf("sysctl %s: %w", path, err)
			}
			if validate != nil {
				if err := validate(v); err != nil {
					return fmt.Errorf("sysctl %s: %w", path, err)
				}
			}
			*ptr = v
			if onChange != nil {
				onChange(v)
			}
			return nil
		},
	}
	t.register(p)
	return p
}

// Float64 registers a float64 parameter.
func (t *Table) Float64(path, desc string, ptr *float64, validate func(float64) error, onChange func(float64)) *Param {
	p := &Param{
		Path:        path,
		Description: desc,
		get:         func() string { return strconv.FormatFloat(*ptr, 'g', -1, 64) },
		set: func(s string) error {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("sysctl %s: %w", path, err)
			}
			if validate != nil {
				if err := validate(v); err != nil {
					return fmt.Errorf("sysctl %s: %w", path, err)
				}
			}
			*ptr = v
			if onChange != nil {
				onChange(v)
			}
			return nil
		},
	}
	t.register(p)
	return p
}

// Bool registers a boolean parameter accepting 0/1/true/false.
func (t *Table) Bool(path, desc string, ptr *bool, onChange func(bool)) *Param {
	p := &Param{
		Path:        path,
		Description: desc,
		get: func() string {
			if *ptr {
				return "1"
			}
			return "0"
		},
		set: func(s string) error {
			switch s {
			case "0", "false":
				*ptr = false
			case "1", "true":
				*ptr = true
			default:
				return fmt.Errorf("sysctl %s: invalid boolean %q", path, s)
			}
			if onChange != nil {
				onChange(*ptr)
			}
			return nil
		},
	}
	t.register(p)
	return p
}

// Lookup returns the parameter at path, or nil.
func (t *Table) Lookup(path string) *Param {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.params[path]
}

// Set writes value to the parameter at path. Unknown paths fail with a
// did-you-mean hint (see Suggest) rather than a bare error.
func (t *Table) Set(path, value string) error {
	p := t.Lookup(path)
	if p == nil {
		return t.UnknownKeyError(path)
	}
	return p.Set(value)
}

// Get reads the parameter at path.
func (t *Table) Get(path string) (string, error) {
	p := t.Lookup(path)
	if p == nil {
		return "", t.UnknownKeyError(path)
	}
	return p.Get(), nil
}

// All returns every parameter sorted by path.
func (t *Table) All() []*Param {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Param, 0, len(t.params))
	for _, p := range t.params {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}
