package engine

import (
	"testing"

	"chrono/internal/mem"
	"chrono/internal/simclock"
	"chrono/internal/vm"
)

// buildLimited maps one hot-head process with a cgroup memory limit.
func buildLimited(t *testing.T, limit int64) (*Engine, *vm.Process) {
	t.Helper()
	e := newTestEngine(41)
	p := vm.NewProcess(1, "lim", 3000)
	start := p.VMAs()[0].Start
	for i := uint64(0); i < 3000; i++ {
		w := 0.01 // mostly very cold
		if i >= 2500 {
			w = 50 // hot tail (starts in the slow tier)
		}
		p.SetPattern(start+i, w, 0.7)
	}
	p.MemLimit = limit
	e.AddProcess(p, 2)
	if err := e.MapAll(BasePages); err != nil {
		t.Fatal(err)
	}
	e.AttachPolicy(&promoteOnFault{})
	return e, p
}

func TestSwapOutAccounting(t *testing.T) {
	e, p := buildLimited(t, 0)
	e.Run(simclock.Second)
	var victim *vm.Page
	for _, pg := range e.Pages() {
		if pg.Tier == mem.SlowTier {
			victim = pg
			break
		}
	}
	slowBefore := e.Node().Used(mem.SlowTier)
	if !e.SwapOut(victim) {
		t.Fatal("SwapOut failed")
	}
	if !victim.Flags.Has(vm.FlagSwapped) {
		t.Fatal("flag not set")
	}
	if e.Node().Used(mem.SlowTier) != slowBefore-1 {
		t.Fatal("slow tier not freed")
	}
	if e.ResidentSwap(p) != 1 || e.SwappedOut() != 1 {
		t.Fatal("swap residency counters wrong")
	}
	if e.M.SwapOuts != 1 {
		t.Fatalf("SwapOuts=%d", e.M.SwapOuts)
	}
	// Double swap-out is rejected; fast pages are rejected.
	if e.SwapOut(victim) {
		t.Fatal("double SwapOut succeeded")
	}
}

func TestSwappedPageOperations(t *testing.T) {
	e, _ := buildLimited(t, 0)
	e.Run(simclock.Second)
	var pg *vm.Page
	for _, c := range e.Pages() {
		if c.Tier == mem.SlowTier {
			pg = c
			break
		}
	}
	e.SwapOut(pg)
	// Protect on a swapped page is a no-op.
	e.Protect(pg)
	if pg.Flags.Has(vm.FlagProtNone) {
		t.Fatal("swapped page poisoned")
	}
	// Demote is rejected.
	if e.Demote(pg) {
		t.Fatal("demoting a swapped page succeeded")
	}
	// Promote swap-ins to the fast tier.
	if !e.Promote(pg) {
		t.Fatal("promote (swap-in) failed")
	}
	if pg.Flags.Has(vm.FlagSwapped) || pg.Tier != mem.FastTier {
		t.Fatal("swap-in state wrong")
	}
	if e.M.SwapIns != 1 {
		t.Fatalf("SwapIns=%d", e.M.SwapIns)
	}
}

func TestCgroupReclaimEnforcesLimit(t *testing.T) {
	// Resident 3000 pages, limit 2000: reclaim must swap ~1000 out.
	e, p := buildLimited(t, 2000)
	e.Run(60 * simclock.Second)
	resident := e.ResidentFast(p) + e.ResidentSlow(p)
	if resident > 2100 {
		t.Fatalf("resident %d pages, limit 2000 not enforced", resident)
	}
	if e.ResidentSwap(p) < 900 {
		t.Fatalf("only %d pages swapped", e.ResidentSwap(p))
	}
}

func TestCgroupReclaimSparesHotPages(t *testing.T) {
	e, p := buildLimited(t, 2000)
	e.Run(120 * simclock.Second)
	// The hot tail (weight 50) must stay resident: reclaim picks idle
	// pages first.
	start := p.VMAs()[0].Start
	swappedHot := 0
	for i := uint64(2500); i < 3000; i++ {
		if pg := p.PageAt(start + i); pg != nil && pg.Flags.Has(vm.FlagSwapped) {
			swappedHot++
		}
	}
	if swappedHot > 50 {
		t.Fatalf("%d of 500 hot pages were reclaimed", swappedHot)
	}
}

func TestSwapLatencyReducesThroughput(t *testing.T) {
	// Swapping the HOT set must devastate throughput; swapping cold
	// pages must barely matter.
	run := func(swapHot bool) float64 {
		e, p := buildLimited(t, 0)
		e.Run(simclock.Second)
		start := p.VMAs()[0].Start
		count := 0
		for i := uint64(0); i < 3000 && count < 400; i++ {
			idx := i
			if swapHot {
				idx = 3000 - 1 - i
			}
			pg := p.PageAt(start + idx)
			if pg != nil && pg.Tier == mem.SlowTier && e.SwapOut(pg) {
				count++
			}
		}
		m := e.Run(20 * simclock.Second)
		return m.Throughput()
	}
	cold := run(false)
	hot := run(true)
	if hot >= cold*0.7 {
		t.Fatalf("swapping the hot set (%v) should hurt far more than cold (%v)", hot, cold)
	}
}

func TestUnlimitedProcessNeverReclaimed(t *testing.T) {
	e, p := buildLimited(t, 0)
	e.Run(30 * simclock.Second)
	if e.ResidentSwap(p) != 0 {
		t.Fatal("pages reclaimed without a memory limit")
	}
}
