package engine

import (
	"chrono/internal/mem"
	"chrono/internal/simclock"
	"chrono/internal/units"
)

// This file implements the per-epoch throughput/latency accounting.

// latency jitter spread: queueing and cache effects scatter observed
// access latency around the device latency. The weights approximate the
// shape of the measured Optane/DRAM access-time distributions.
var jitter = [...]struct {
	mult float64
	frac float64
}{
	{0.85, 0.30},
	{1.00, 0.40},
	{1.40, 0.20},
	{2.50, 0.08},
	{5.00, 0.02},
}

// AccessBytes is the demand one access generates: a cache-line fill
// (64 B) — pmbench-style pointer-chasing touches one line per op.
const AccessBytes = 64

// SlowMediaAmp is Optane PM's internal access granularity amplification:
// the media operates on 256 B XPLines, so a random 64 B demand costs 4× at
// the media, and a store additionally performs a read-modify-write
// (Xiang et al., EuroSys '22, "a close look at its on-DIMM buffering").
const SlowMediaAmp = 4

// updateRates recomputes each process's closed-loop access rate from its
// current placement, kernel-time pressure, and fault overhead.
func (e *Engine) updateRates() {
	// Kernel work competes with app threads for the same CPUs: scale
	// throughput down by the global kernel-time fraction.
	penalty := 1 - e.kernelFrac
	if penalty < 0.5 {
		penalty = 0.5
	}
	for _, ps := range e.procs {
		if ps.wTot <= 0 {
			ps.rate = 0
			continue
		}
		var wl float64
		for t := mem.TierID(0); t < mem.NumTiers; t++ {
			wl += ps.wRead[t]*float64(e.cfg.Latency.ReadNS[t])*e.latMult(t, false) +
				ps.wWrite[t]*float64(e.cfg.Latency.WriteNS[t])*e.latMult(t, true)
		}
		wl += ps.wSwap * SwapLatencyNS
		avgLat := wl / ps.wTot
		perAccess := float64(e.cfg.CPUWorkNS) + float64(ps.proc.DelayNS) + avgLat + ps.faultOverheadNS
		ps.rate = float64(ps.threads) * 1e9 / perAccess * penalty
	}
}

// latMult returns the current queueing latency multiplier of a tier/op.
func (e *Engine) latMult(t mem.TierID, write bool) float64 {
	if t == mem.SlowTier {
		return e.slowLatMult
	}
	return e.fastLatMult
}

// queueMult converts a bandwidth utilization into a latency inflation
// factor: near-linear at low load, exploding toward saturation — the
// open-loop M/M/1 shape that makes Optane bandwidth the first-order
// performance effect in the paper's write-heavy experiments.
func queueMult(util float64) float64 {
	if util < 0 {
		util = 0
	}
	capped := util
	if capped > 0.97 {
		capped = 0.97
	}
	return 1 + 0.5*util + 0.5*capped*capped/(1-capped)
}

// updateBandwidth recomputes tier utilizations from the epoch's measured
// traffic and refreshes the latency multipliers (EMA-smoothed to damp the
// rate↔latency feedback loop).
func (e *Engine) updateBandwidth(migBytesPerSec float64) {
	var slowReadBytesPerSec, slowWriteBytesPerSec, fastBytesPerSec float64
	for _, ps := range e.procs {
		if ps.wTot <= 0 || ps.rate <= 0 {
			continue
		}
		perW := ps.rate / ps.wTot * AccessBytes
		slowReadBytesPerSec += perW * ps.wRead[mem.SlowTier]
		slowWriteBytesPerSec += perW * ps.wWrite[mem.SlowTier]
		fastBytesPerSec += perW * (ps.wRead[mem.FastTier] + ps.wWrite[mem.FastTier])
	}
	// Optane media amplification: random 64 B reads cost a 256 B XPLine
	// fetch; stores read-modify-write a full line. Migration copies also
	// land on the slow media (one side of every promotion/demotion).
	node := e.node
	readStreamBytesPerSec := (slowReadBytesPerSec + slowWriteBytesPerSec) * SlowMediaAmp
	writeStreamBytesPerSec := slowWriteBytesPerSec*SlowMediaAmp + migBytesPerSec
	ru := readStreamBytesPerSec / float64(node.SlowReadBW)
	wu := writeStreamBytesPerSec / float64(node.SlowWriteBW)
	slowUtil := ru
	if wu > slowUtil {
		slowUtil = wu
	}
	fastUtil := (fastBytesPerSec + migBytesPerSec) / float64(node.FastBW)
	e.slowUtilEMA = 0.5*e.slowUtilEMA + 0.5*slowUtil
	e.fastUtilEMA = 0.5*e.fastUtilEMA + 0.5*fastUtil
	e.slowLatMult = queueMult(e.slowUtilEMA)
	e.fastLatMult = queueMult(e.fastUtilEMA)
}

// SlowUtilization returns the smoothed slow-tier bandwidth utilization.
func (e *Engine) SlowUtilization() float64 { return e.slowUtilEMA }

// epochTick closes one accounting epoch: it attributes the epoch's
// accesses to latency histograms and counters, refreshes fault-overhead
// estimates and contention, and recomputes rates for the next epoch.
func (e *Engine) epochTick(now simclock.Time) {
	dt := e.cfg.EpochNS.Seconds()

	// Per-tier access masses accumulate across processes first: the jitter
	// histogram expansion depends only on the tier and op, so one expansion
	// per tier replaces one per (process, tier) — at fig6a scale that turns
	// ~2000 histogram inserts per epoch into ~40.
	var tierReads, tierWrites [mem.NumTiers]float64
	for _, ps := range e.procs {
		if ps.wTot <= 0 || ps.rate <= 0 {
			continue
		}
		acc := ps.rate * dt
		e.M.Accesses += acc

		fastShare := (ps.wRead[mem.FastTier] + ps.wWrite[mem.FastTier]) / ps.wTot
		e.M.FastAccesses += acc * fastShare

		for t := mem.TierID(0); t < mem.NumTiers; t++ {
			reads := acc * ps.wRead[t] / ps.wTot
			writes := acc * ps.wWrite[t] / ps.wTot
			e.M.Reads += reads
			e.M.Writes += writes
			tierReads[t] += reads
			tierWrites[t] += writes
		}

		// Fault overhead per access (EMA over epochs).
		var perAccess float64
		if acc > 0 {
			perAccess = ps.epochFaults * float64(e.cfg.FaultKernelNS) * e.cfg.CostScale / acc
		}
		ps.faultOverheadNS = 0.7*ps.faultOverheadNS + 0.3*perAccess
		ps.epochFaults = 0
	}
	for t := mem.TierID(0); t < mem.NumTiers; t++ {
		reads, writes := tierReads[t], tierWrites[t]
		for _, j := range jitter {
			if reads > 0 {
				l := float64(e.cfg.Latency.ReadNS[t]) * e.latMult(t, false) * j.mult
				e.M.Lat.Add(l, reads*j.frac)
				e.M.LatRead.Add(l, reads*j.frac)
			}
			if writes > 0 {
				l := float64(e.cfg.Latency.WriteNS[t]) * e.latMult(t, true) * j.mult
				e.M.Lat.Add(l, writes*j.frac)
				e.M.LatWrite.Add(l, writes*j.frac)
			}
		}
	}

	// Baseline scheduler context switches and the kernel-time fraction
	// for the next epoch's throughput penalty.
	var appNS float64
	for _, ps := range e.procs {
		appNS += float64(ps.threads) * dt * 1e9
		e.M.ContextSwitches += e.cfg.ContextSwitchIdleHz.Count(units.Sec(dt))
	}
	e.M.AppNS += appNS
	if appNS+e.kernelNSEpoch > 0 {
		frac := e.kernelNSEpoch / (appNS + e.kernelNSEpoch)
		e.kernelFrac = 0.7*e.kernelFrac + 0.3*frac
	}
	e.kernelNSEpoch = 0

	// Migration traffic contends with demand accesses at the media.
	migBW := e.epochMigBytes / dt // bytes/s this epoch
	e.epochMigBytes = 0
	e.updateBandwidth(migBW)

	// Refill the migration token bucket. The burst bound is 5 seconds of
	// budget: policies that migrate in periodic batches (Multi-Clock's
	// CLOCK pass, Memtis's kmigrated) spend their whole batch at one
	// instant, and the kernel path could absorb such bursts; the bucket
	// still enforces the sustained average.
	e.migTokens += float64(e.cfg.MigrationBWBytes) * dt
	if maxTokens := 5 * float64(e.cfg.MigrationBWBytes); e.migTokens > maxTokens {
		e.migTokens = maxTokens
	}

	e.updateRates()
	if e.EpochHook != nil {
		e.EpochHook(now)
	}
	e.sanitizeTick()
}

// DRAMPagePercent returns the Figure 9 metric for one process:
// fast-resident / (fast+slow resident) × 100.
func (e *Engine) DRAMPagePercent(pid int) float64 {
	ps := e.byPID[pid]
	if ps == nil {
		return 0
	}
	tot := ps.residentFast + ps.residentSlow
	if tot == 0 {
		return 0
	}
	return float64(ps.residentFast) / float64(tot) * 100
}

// ProcRate returns the current access rate of a process (accesses/sec).
func (e *Engine) ProcRate(pid int) float64 {
	ps := e.byPID[pid]
	if ps == nil {
		return 0
	}
	return ps.rate
}
