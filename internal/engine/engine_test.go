package engine

import (
	"math"
	"testing"

	"chrono/internal/mem"
	"chrono/internal/pebs"
	"chrono/internal/policy"
	"chrono/internal/simclock"
	"chrono/internal/vm"
)

// newTestEngine builds a small deterministic engine: 4 GB fast + 12 GB
// slow at 256 pages/GB = 1024 fast + 3072 slow pages.
func newTestEngine(seed uint64) *Engine {
	return New(Config{Seed: seed, FastGB: 4, SlowGB: 12})
}

// drainTo replays pending faults and master events up to deadline — the
// white-box twin of runLoop for tests that drive the fault path without a
// full Run (fault timers live in the shard queues, not the clock, so a bare
// Clock().RunUntil would never deliver them).
func drainTo(e *Engine, deadline simclock.Time) {
	for !e.clock.Stopped() {
		next := e.clock.NextAt()
		limit := deadline
		if next < limit {
			limit = next
		}
		if e.drainFaults(limit) {
			continue
		}
		if next > deadline {
			break
		}
		if !e.clock.StepAfter() {
			break
		}
	}
	if !e.clock.Stopped() && e.clock.Now() < deadline {
		e.clock.AdvanceTo(deadline)
	}
}

// addUniformProc maps one process with n uniformly weighted pages.
func addUniformProc(e *Engine, pid int, n uint64, readFrac float64) *vm.Process {
	p := vm.NewProcess(pid, "t", n)
	start := p.VMAs()[0].Start
	for i := uint64(0); i < n; i++ {
		p.SetPattern(start+i, 1, readFrac)
	}
	e.AddProcess(p, 1)
	return p
}

func TestMappingFillsFastThenSlow(t *testing.T) {
	e := newTestEngine(1)
	addUniformProc(e, 1, 2000, 1)
	if err := e.MapAll(BasePages); err != nil {
		t.Fatal(err)
	}
	high := e.Node().Watermarks(mem.FastTier).High
	usedFast := e.Node().Used(mem.FastTier)
	// Fast fills down to (roughly) its high watermark, remainder to slow.
	if usedFast < e.Node().Capacity(mem.FastTier)-high-64 || usedFast > e.Node().Capacity(mem.FastTier) {
		t.Fatalf("fast used %d of %d (high %d)", usedFast, e.Node().Capacity(mem.FastTier), high)
	}
	if e.Node().Used(mem.SlowTier) != 2000-usedFast {
		t.Fatal("slow accounting inconsistent")
	}
}

func TestMapAllInterleavesAcrossProcesses(t *testing.T) {
	e := newTestEngine(1)
	addUniformProc(e, 1, 1500, 1)
	addUniformProc(e, 2, 1500, 1)
	if err := e.MapAll(BasePages); err != nil {
		t.Fatal(err)
	}
	f1 := e.ResidentFast(e.Processes()[0])
	f2 := e.ResidentFast(e.Processes()[1])
	if f1 == 0 || f2 == 0 {
		t.Fatalf("interleave broken: proc fast residency %d / %d", f1, f2)
	}
	ratio := float64(f1) / float64(f2)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("fast residency skewed: %d vs %d", f1, f2)
	}
}

func TestMapOverCapacityFails(t *testing.T) {
	e := newTestEngine(1)
	addUniformProc(e, 1, 5000, 1) // 5000 > 1024+3072
	if err := e.MapAll(BasePages); err == nil {
		t.Fatal("mapping beyond all capacity succeeded")
	}
}

func TestHugeMapping(t *testing.T) {
	e := newTestEngine(1)
	addUniformProc(e, 1, 256, 1)
	if err := e.MapAll(HugePages); err != nil {
		t.Fatal(err)
	}
	hf := e.Config().HugeFactor
	count := 0
	for _, pg := range e.Pages() {
		if pg == nil {
			continue
		}
		count++
		if int(pg.Size) != hf {
			t.Fatalf("page size %d, want HugeFactor %d", pg.Size, hf)
		}
		if !pg.Flags.Has(vm.FlagHuge) {
			t.Fatal("huge page missing FlagHuge")
		}
	}
	if count != 256/hf {
		t.Fatalf("%d huge pages for 256 base", count)
	}
}

func TestPromoteDemoteAccounting(t *testing.T) {
	e := newTestEngine(1)
	p := addUniformProc(e, 1, 2000, 1)
	if err := e.MapAll(BasePages); err != nil {
		t.Fatal(err)
	}
	e.Run(simclock.Second) // prime rates and token bucket
	var slowPage *vm.Page
	for _, pg := range e.Pages() {
		if pg.Tier == mem.SlowTier {
			slowPage = pg
			break
		}
	}
	if slowPage == nil {
		t.Fatal("no slow page after mapping 2000 pages")
	}
	fastBefore := e.ResidentFast(p)
	if !e.Promote(slowPage) {
		t.Fatal("promote failed")
	}
	if slowPage.Tier != mem.FastTier {
		t.Fatal("page tier not updated")
	}
	if e.ResidentFast(p) != fastBefore+1 {
		t.Fatal("residentFast not updated")
	}
	if e.M.Promotions != 1 {
		t.Fatalf("Promotions=%d", e.M.Promotions)
	}
	if !e.Demote(slowPage) {
		t.Fatal("demote failed")
	}
	if slowPage.Tier != mem.SlowTier || e.M.Demotions < 1 {
		t.Fatal("demotion accounting wrong")
	}
	if !e.everSlow[slowPage.ID] || !e.everPromoted[slowPage.ID] {
		t.Fatal("ever-slow/ever-promoted tracking wrong")
	}
}

func TestPromoteIdempotentOnFastPage(t *testing.T) {
	e := newTestEngine(1)
	addUniformProc(e, 1, 100, 1)
	e.MapAll(BasePages)
	pg := e.Pages()[0]
	if pg.Tier != mem.FastTier {
		t.Skip("first page not fast")
	}
	if !e.Promote(pg) {
		t.Fatal("promote of fast page should be a no-op success")
	}
	if e.M.Promotions != 0 {
		t.Fatal("no-op promote counted")
	}
}

func TestAggregateConsistencyAfterMigrations(t *testing.T) {
	e := newTestEngine(3)
	p := addUniformProc(e, 1, 2000, 0.7)
	if err := e.MapAll(BasePages); err != nil {
		t.Fatal(err)
	}
	e.Run(simclock.Second)
	// Migrate a bunch of pages both ways.
	moved := 0
	for _, pg := range e.Pages() {
		if pg.Tier == mem.SlowTier && moved < 50 {
			if e.Promote(pg) {
				moved++
			}
		}
	}
	for _, pg := range e.Pages() {
		if pg.Tier == mem.FastTier && moved < 80 {
			if e.Demote(pg) {
				moved++
			}
		}
	}
	// Incremental aggregates must match a from-scratch recompute.
	ps := e.byPID[p.PID]
	gotFast := ps.wRead[mem.FastTier] + ps.wWrite[mem.FastTier]
	gotSlow := ps.wRead[mem.SlowTier] + ps.wWrite[mem.SlowTier]
	var wantFast, wantSlow float64
	seen := make(map[int64]bool)
	for _, pg := range e.Pages() {
		if pg == nil || seen[pg.ID] {
			continue
		}
		seen[pg.ID] = true
		w, _ := p.PageWeight(pg)
		if pg.Tier == mem.FastTier {
			wantFast += w
		} else {
			wantSlow += w
		}
	}
	if math.Abs(gotFast-wantFast) > 1e-6 || math.Abs(gotSlow-wantSlow) > 1e-6 {
		t.Fatalf("aggregates drifted: fast %v vs %v, slow %v vs %v",
			gotFast, wantFast, gotSlow, wantSlow)
	}
}

func TestProtectDeliversFault(t *testing.T) {
	e := newTestEngine(5)
	addUniformProc(e, 1, 500, 1)
	e.MapAll(BasePages)
	var faulted []*vm.Page
	pol := &recordingPolicy{onFault: func(pg *vm.Page, now simclock.Time) {
		faulted = append(faulted, pg)
	}}
	e.AttachPolicy(pol)
	pg := e.Pages()[10]
	e.horizon = 10 * simclock.Second
	e.updateRates()
	e.Protect(pg)
	if !pg.Flags.Has(vm.FlagProtNone) {
		t.Fatal("Protect did not set PROT_NONE")
	}
	drainTo(e, 5*simclock.Second)
	if len(faulted) != 1 || faulted[0] != pg {
		t.Fatalf("fault delivery: %v", faulted)
	}
	if pg.Flags.Has(vm.FlagProtNone) {
		t.Fatal("fault did not clear PROT_NONE")
	}
	if pg.LastFault == 0 {
		t.Fatal("LastFault not stamped")
	}
	// CIT bound: with uniform gaps the fault arrives within one access
	// period of the page.
	cit := pg.LastFault - pg.ProtTS
	period := simclock.FromSeconds(1 / e.PageRate(pg))
	if cit < 0 || cit > period+simclock.Millisecond {
		t.Fatalf("CIT %v outside [0, %v]", cit, period)
	}
}

func TestUnprotectCancelsFault(t *testing.T) {
	e := newTestEngine(5)
	addUniformProc(e, 1, 500, 1)
	e.MapAll(BasePages)
	faults := 0
	e.AttachPolicy(&recordingPolicy{onFault: func(*vm.Page, simclock.Time) { faults++ }})
	e.horizon = 10 * simclock.Second
	e.updateRates()
	pg := e.Pages()[0]
	e.Protect(pg)
	e.Unprotect(pg)
	drainTo(e, 9*simclock.Second)
	if faults != 0 {
		t.Fatalf("%d faults after Unprotect", faults)
	}
}

func TestReprotectInvalidatesStaleFault(t *testing.T) {
	e := newTestEngine(5)
	addUniformProc(e, 1, 500, 1)
	e.MapAll(BasePages)
	faults := 0
	e.AttachPolicy(&recordingPolicy{onFault: func(*vm.Page, simclock.Time) { faults++ }})
	e.horizon = 30 * simclock.Second
	e.updateRates()
	pg := e.Pages()[0]
	e.Protect(pg)
	e.Protect(pg) // restamp; old event must not double-deliver
	drainTo(e, 20*simclock.Second)
	if faults != 1 {
		t.Fatalf("faults=%d after re-protect, want exactly 1", faults)
	}
}

func TestZeroWeightPageNeverFaults(t *testing.T) {
	e := newTestEngine(5)
	p := vm.NewProcess(1, "z", 100)
	e.AddProcess(p, 1) // all weights zero
	e.MapAll(BasePages)
	faults := 0
	e.AttachPolicy(&recordingPolicy{onFault: func(*vm.Page, simclock.Time) { faults++ }})
	e.horizon = 10 * simclock.Second
	e.Protect(e.Pages()[0])
	drainTo(e, 9*simclock.Second)
	if faults != 0 {
		t.Fatal("zero-weight page faulted")
	}
}

func TestSplitHuge(t *testing.T) {
	e := newTestEngine(7)
	p := addUniformProc(e, 1, 256, 0.5)
	if err := e.MapAll(HugePages); err != nil {
		t.Fatal(err)
	}
	var huge *vm.Page
	for _, pg := range e.Pages() {
		if pg != nil && pg.IsHuge() {
			huge = pg
			break
		}
	}
	usedBefore := e.Node().Used(huge.Tier)
	wTotBefore := e.byPID[p.PID].wRead[huge.Tier] + e.byPID[p.PID].wWrite[huge.Tier]
	out := e.SplitHuge(huge)
	if len(out) != int(huge.Size) {
		t.Fatalf("split produced %d pages, want %d", len(out), huge.Size)
	}
	if e.Pages()[huge.ID] != nil {
		t.Fatal("huge page still in page table")
	}
	if e.Node().Used(huge.Tier) != usedBefore {
		t.Fatal("split changed capacity accounting")
	}
	wTotAfter := e.byPID[p.PID].wRead[huge.Tier] + e.byPID[p.PID].wWrite[huge.Tier]
	if math.Abs(wTotBefore-wTotAfter) > 1e-9 {
		t.Fatalf("split changed weight mass: %v -> %v", wTotBefore, wTotAfter)
	}
	for i, np := range out {
		if np.Size != 1 || np.VPN != huge.VPN+uint64(i) {
			t.Fatalf("split page %d: size=%d vpn=%d", i, np.Size, np.VPN)
		}
		if p.PageAt(np.VPN) != np {
			t.Fatal("split page not registered")
		}
	}
	if e.SplitHuge(out[0]) != nil {
		t.Fatal("splitting a base page should return nil")
	}
}

func TestMigrationTokenBucket(t *testing.T) {
	e := newTestEngine(9)
	addUniformProc(e, 1, 3000, 1)
	e.MapAll(BasePages)
	e.AttachPolicy(&recordingPolicy{})
	e.Run(simclock.Second)
	// Budget: ~1 second of bucket (MigrationBWBytes) + epoch refills.
	// Promote until the bucket runs dry within one instant.
	promoted := 0
	for _, pg := range e.Pages() {
		if pg.Tier == mem.SlowTier {
			if !e.Promote(pg) {
				break
			}
			promoted++
		}
	}
	maxPages := int(5 * float64(e.cfg.MigrationBWBytes) / float64(e.node.PageSizeBytes))
	if promoted == 0 {
		t.Fatal("no promotions at all")
	}
	if promoted > maxPages {
		t.Fatalf("promoted %d pages in one instant, bucket should cap at %d", promoted, maxPages)
	}
}

func TestKswapdDemotesBelowWatermark(t *testing.T) {
	e := newTestEngine(11)
	addUniformProc(e, 1, 3000, 1)
	e.MapAll(BasePages)
	e.AttachPolicy(&recordingPolicy{})
	// Drain fast free below the high watermark by raising pro/high via
	// direct allocation.
	free := e.Node().Free(mem.FastTier)
	if free > 0 {
		e.Node().Alloc(mem.FastTier, free)
	}
	if !e.Node().BelowHigh(mem.FastTier) {
		t.Fatal("setup: not below high")
	}
	e.Run(2 * simclock.Second)
	if e.M.Demotions == 0 {
		t.Fatal("kswapd did not demote under watermark pressure")
	}
}

func TestRunAccumulatesMetrics(t *testing.T) {
	e := newTestEngine(13)
	addUniformProc(e, 1, 1000, 0.7)
	e.MapAll(BasePages)
	e.AttachPolicy(&recordingPolicy{})
	m := e.Run(10 * simclock.Second)
	if m.Accesses <= 0 {
		t.Fatal("no accesses recorded")
	}
	if m.Duration != 10*simclock.Second {
		t.Fatalf("Duration=%v", m.Duration)
	}
	if m.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
	if m.FMAR() <= 0 || m.FMAR() > 1 {
		t.Fatalf("FMAR=%v", m.FMAR())
	}
	if m.Lat.Total() <= 0 {
		t.Fatal("latency histogram empty")
	}
	reads, writes := m.Reads, m.Writes
	ratio := reads / (reads + writes)
	if math.Abs(ratio-0.7) > 0.02 {
		t.Fatalf("read share %v, want ~0.7", ratio)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		e := newTestEngine(99)
		addUniformProc(e, 1, 2000, 0.7)
		e.MapAll(BasePages)
		e.AttachPolicy(&recordingPolicy{})
		return e.Run(20 * simclock.Second).Accesses
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different results: %v vs %v", a, b)
	}
}

func TestSeedChangesResults(t *testing.T) {
	run := func(seed uint64) float64 {
		e := newTestEngine(seed)
		p := vm.NewProcess(1, "g", 2000)
		start := p.VMAs()[0].Start
		for i := uint64(0); i < 2000; i++ {
			w := 1.0
			if i%7 == 0 {
				w = 50
			}
			p.SetPattern(start+i, w, 0.5)
		}
		e.AddProcess(p, 1)
		e.MapAll(BasePages)
		pol := &promoteOnFault{}
		e.AttachPolicy(pol)
		e.Clock().Every(simclock.Second, func(simclock.Time) {
			for _, pg := range e.Pages() {
				if pg.Tier == mem.SlowTier {
					e.Protect(pg)
				}
			}
		})
		return e.Run(30 * simclock.Second).Faults
	}
	if a, b := run(1), run(2); a == b {
		t.Fatalf("different seeds produced identical fault counts %v", a)
	}
}

func TestAccessedTestAndClear(t *testing.T) {
	e := newTestEngine(15)
	p := vm.NewProcess(1, "a", 100)
	start := p.VMAs()[0].Start
	p.SetPattern(start, 1000, 1) // one very hot page
	// page 50 stays zero weight
	e.AddProcess(p, 1)
	e.MapAll(BasePages)
	e.AttachPolicy(&recordingPolicy{})
	e.Run(5 * simclock.Second)
	hot := p.PageAt(start)
	cold := p.PageAt(start + 50)
	// Advance virtual time before testing (bits were cleared at map).
	e.Clock().At(e.Clock().Now()+simclock.Minute, func(simclock.Time) {})
	e.Clock().Run()
	if !e.AccessedTestAndClear(hot) {
		t.Fatal("hot page accessed bit clear")
	}
	if e.AccessedTestAndClear(cold) {
		t.Fatal("zero-weight page accessed bit set")
	}
}

func TestSamplePEBSDistribution(t *testing.T) {
	e := newTestEngine(17)
	p := vm.NewProcess(1, "s", 1000)
	start := p.VMAs()[0].Start
	for i := uint64(0); i < 1000; i++ {
		w := 1.0
		if i < 10 {
			w = 1000 // tiny very hot head
		}
		p.SetPattern(start+i, w, 1)
	}
	e.AddProcess(p, 1)
	e.MapAll(BasePages)
	e.AttachPolicy(&recordingPolicy{})
	e.Run(simclock.Second)
	s := pebs.NewSampler(e.RNG(), 10000)
	n := e.SamplePEBS(s, 1.0)
	if n != 10000 {
		t.Fatalf("retained %d samples", n)
	}
	// The 10 hot pages carry ~91% of the rate; their counters should
	// dominate.
	var hotCount uint64
	for i := uint64(0); i < 10; i++ {
		hotCount += uint64(s.Counter(p.PageAt(start + i).ID))
	}
	if frac := float64(hotCount) / 10000; frac < 0.85 {
		t.Fatalf("hot pages drew only %.2f of samples", frac)
	}
}

func TestSysctlNumaTiering(t *testing.T) {
	e := newTestEngine(19)
	v, err := e.Sysctl().Get("kernel/numa_tiering")
	if err != nil || v != "1" {
		t.Fatalf("numa_tiering=%q err=%v", v, err)
	}
}

func TestDRAMPagePercent(t *testing.T) {
	e := newTestEngine(21)
	p := addUniformProc(e, 1, 2000, 1)
	e.MapAll(BasePages)
	pct := e.DRAMPagePercent(p.PID)
	want := float64(e.ResidentFast(p)) / 2000 * 100
	if math.Abs(pct-want) > 1e-9 {
		t.Fatalf("DRAMPagePercent=%v want %v", pct, want)
	}
	if e.DRAMPagePercent(999) != 0 {
		t.Fatal("unknown PID should report 0")
	}
}

// recordingPolicy is a minimal policy for engine tests.
type recordingPolicy struct {
	policy.Base
	onFault func(pg *vm.Page, now simclock.Time)
}

func (r *recordingPolicy) Name() string         { return "recorder" }
func (r *recordingPolicy) Attach(policy.Kernel) {}
func (r *recordingPolicy) OnFault(pg *vm.Page, now simclock.Time) {
	if r.onFault != nil {
		r.onFault(pg, now)
	}
}

// promoteOnFault is an MRU mini-policy used for determinism tests.
type promoteOnFault struct {
	policy.Base
	k policy.Kernel
}

func (p *promoteOnFault) Name() string           { return "mru" }
func (p *promoteOnFault) Attach(k policy.Kernel) { p.k = k }
func (p *promoteOnFault) OnFault(pg *vm.Page, now simclock.Time) {
	if pg.Tier == mem.SlowTier {
		p.k.Promote(pg)
	}
}
