package engine

import (
	"fmt"
	"math"

	"chrono/internal/mem"
	"chrono/internal/vm"
)

// This file is the simulator's invariant sanitizer: a consistency check of
// the engine's redundant bookkeeping, in the spirit of the runtime
// consistency checks robust-tiering systems (ARMS, Nomad) keep in their
// debug builds. It is wired to run after every metric-epoch event drain
// and at the end of Run when enabled — either explicitly through
// Config.DebugChecks or globally by building with the `simdebug` tag
// (see sanitize_debug.go / sanitize_release.go).
//
// A violation panics with a dump of the offending state: simulation
// results downstream of a corrupted page table are worthless, and the
// paper's figures must never be produced from one.

// sanitizeViolation formats and panics.
func sanitizeViolation(format string, args ...any) {
	panic("engine: invariant violation: " + fmt.Sprintf(format, args...))
}

// dumpPage renders one page's state for violation messages.
func dumpPage(pg *vm.Page) string {
	if pg == nil {
		return "<nil page>"
	}
	return fmt.Sprintf(
		"page{ID:%d VPN:%#x PID:%d Tier:%v Size:%d Flags:%#x ProtTS:%v LastFault:%v DemoteTS:%v}",
		pg.ID, pg.VPN, pg.Proc.PID, pg.Tier, pg.Size, pg.Flags,
		pg.ProtTS, pg.LastFault, pg.DemoteTS)
}

// CheckInvariants validates the engine's cross-structure consistency and
// panics on the first violation. It is cheap enough (one pass over the
// page table) to run every epoch in debug builds, and is exported so
// tests and harnesses can assert consistency at arbitrary points.
//
// Checked invariants:
//
//  1. Tier accounting: used ≤ capacity, free ≥ 0, and the node's used
//     counter covers at least the sum of resident page sizes per tier
//     (raw node allocations may exceed the page table, never the reverse).
//  2. Placement: every live page is either swapped (resident in no tier)
//     or resident in exactly one valid tier, and sits on exactly the
//     kernel LRU of that tier; swapped and freed pages are on no list.
//  3. LRU: per-tier active+inactive list length equals the number of
//     resident pages of that tier.
//  4. Watermarks: Min ≤ Low ≤ High ≤ Pro ≤ Capacity on every tier.
//  5. Per-process residency: the procState residentFast/Slow/Swap
//     counters reconcile with the page table.
//  6. Migration accounting: promoted+demoted base pages reconcile with
//     MigratedBytes, and each is at least the respective operation count.
//  7. Shadow (transactional-migration) accounting: a shadowed page is
//     live, resident, and in the fast tier — a shadow over a slow,
//     swapped, or freed page would double-count its frames; ShadowBase
//     equals the sum of shadowed page sizes; and the slow tier's used
//     counter covers resident pages plus shadow copies.
func (e *Engine) CheckInvariants() {
	var (
		residentPages [mem.NumTiers]int64 // page objects per tier
		residentBase  [mem.NumTiers]int64 // base pages per tier
		shadowBase    int64               // base pages held as shadow copies
		perProcFast   = make(map[int]int64)
		perProcSlow   = make(map[int]int64)
		perProcSwap   = make(map[int]int64)
	)

	// Pass over the page table: placement and list membership per page.
	for id, pg := range e.pages {
		if pg == nil {
			if e.links.OnAnyList(int64(id)) {
				sanitizeViolation("freed page id %d still on a kernel LRU list", id)
			}
			if e.shadowActive(int64(id)) {
				sanitizeViolation("freed page id %d still holds a shadow copy", id)
			}
			continue
		}
		if e.shadowActive(pg.ID) {
			if pg.Flags.Has(vm.FlagSwapped) {
				sanitizeViolation("swapped page holds a shadow copy: %s", dumpPage(pg))
			}
			if pg.Tier != mem.FastTier {
				sanitizeViolation("shadowed page resident outside the fast tier (double residency): %s", dumpPage(pg))
			}
			shadowBase += int64(pg.Size)
		}
		if pg.ID != int64(id) {
			sanitizeViolation("page table slot %d holds %s", id, dumpPage(pg))
		}
		if pg.Flags.Has(vm.FlagSwapped) {
			if e.links.OnAnyList(pg.ID) {
				sanitizeViolation("swapped page on a kernel LRU list: %s", dumpPage(pg))
			}
			perProcSwap[pg.Proc.PID] += int64(pg.Size)
			continue
		}
		if pg.Tier < 0 || pg.Tier >= mem.NumTiers {
			sanitizeViolation("page resident in no valid tier: %s", dumpPage(pg))
		}
		residentPages[pg.Tier]++
		residentBase[pg.Tier] += int64(pg.Size)
		if pg.Tier == mem.FastTier {
			perProcFast[pg.Proc.PID] += int64(pg.Size)
		} else {
			perProcSlow[pg.Proc.PID] += int64(pg.Size)
		}
		lru := e.kLRU[pg.Tier]
		if !lru.Active.Contains(pg.ID) && !lru.Inactive.Contains(pg.ID) {
			sanitizeViolation("resident page not on its tier's LRU: %s", dumpPage(pg))
		}
		other := e.kLRU[pg.Tier.Other()]
		if other.Active.Contains(pg.ID) || other.Inactive.Contains(pg.ID) {
			sanitizeViolation("page on the LRU of the wrong tier: %s", dumpPage(pg))
		}
	}

	// Tier accounting and watermark ordering.
	for t := mem.TierID(0); t < mem.NumTiers; t++ {
		free, used, capacity := e.node.Free(t), e.node.Used(t), e.node.Capacity(t)
		if free < 0 {
			sanitizeViolation("tier %v free %d < 0", t, free)
		}
		if used > capacity {
			sanitizeViolation("tier %v used %d exceeds capacity %d", t, used, capacity)
		}
		// Raw node.Alloc (external pressure without backing pages, as the
		// kswapd tests use) may push used above the page table's tally,
		// but resident pages can never exceed the node's used counter.
		covered := residentBase[t]
		if t == mem.SlowTier {
			// Shadow copies occupy slow-tier frames without page-table
			// residency; the used counter must cover both.
			covered += shadowBase
		}
		if used < covered {
			sanitizeViolation("tier %v accounting: node used %d, page table holds %d base pages (+%d shadow)",
				t, used, residentBase[t], covered-residentBase[t])
		}
		if got, want := int64(e.kLRU[t].Len()), residentPages[t]; got != want {
			sanitizeViolation("tier %v LRU length %d != %d resident pages", t, got, want)
		}
		w := e.node.Watermarks(t)
		if w.Min > w.Low || w.Low > w.High || w.High > w.Pro || w.Pro > capacity {
			sanitizeViolation("tier %v watermark order violated: min %d low %d high %d pro %d cap %d",
				t, w.Min, w.Low, w.High, w.Pro, capacity)
		}
	}

	// Shadow ledger reconciles with the page pass.
	if e.shadowBase != shadowBase {
		sanitizeViolation("shadow ledger holds %d base pages, page table says %d",
			e.shadowBase, shadowBase)
	}

	// Per-process residency counters.
	for _, ps := range e.procs {
		pid := ps.proc.PID
		if ps.residentFast != perProcFast[pid] || ps.residentSlow != perProcSlow[pid] ||
			ps.residentSwap != perProcSwap[pid] {
			sanitizeViolation(
				"pid %d residency counters fast/slow/swap %d/%d/%d, page table says %d/%d/%d",
				pid, ps.residentFast, ps.residentSlow, ps.residentSwap,
				perProcFast[pid], perProcSlow[pid], perProcSwap[pid])
		}
	}

	// Migration accounting: every promotion/demotion operation moved at
	// least one base page, and the byte counter is the page counters
	// times the page size (it is accumulated per move in float64, so
	// allow one page of rounding slack).
	promoted, demoted := e.node.PromotedPages, e.node.DemotedPages
	if promoted < e.M.Promotions {
		sanitizeViolation("promoted base pages %d < promotion operations %d", promoted, e.M.Promotions)
	}
	if demoted < e.M.Demotions {
		sanitizeViolation("demoted base pages %d < demotion operations %d", demoted, e.M.Demotions)
	}
	wantBytes := float64((promoted + demoted) * e.node.PageSizeBytes)
	if math.Abs(wantBytes-e.M.MigratedBytes) > float64(e.node.PageSizeBytes) {
		sanitizeViolation("migrated %d+%d pages × %d B reconciles to %.0f B, metrics recorded %.0f B",
			promoted, demoted, e.node.PageSizeBytes, wantBytes, e.M.MigratedBytes)
	}
}

// sanitizeTick runs the invariant check when the sanitizer is enabled; the
// engine calls it after each epoch's event drain and at the end of Run.
func (e *Engine) sanitizeTick() {
	if e.sanitize {
		e.CheckInvariants()
	}
}
