package engine

// The live-reconfiguration fence: a run snapshotted mid-flight must
// restore into an engine carrying a *different* policy and keep going —
// no dropped run, metrics carried forward, and byte-identical outcomes
// when the same swap is performed twice.

import (
	"bytes"
	"encoding/json"
	"testing"

	"chrono/internal/faultinject"
	"chrono/internal/policy/memtis"
	"chrono/internal/policy/tpp"
	"chrono/internal/simclock"
)

// snapshotAt runs the engine until the first event at or past mid, takes
// a snapshot there, and stops the clock — the daemon's swap choreography.
func snapshotAt(t *testing.T, e *Engine, mid, dur simclock.Duration) *EngineState {
	t.Helper()
	var snap *EngineState
	e.Clock().SetAfterStep(func() {
		if snap == nil && e.Clock().Now() >= simclock.Time(mid) {
			s, err := e.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			snap = s
			e.Clock().Stop()
		}
	})
	e.Run(dur)
	if snap == nil {
		t.Fatal("snapshot hook never fired")
	}
	return snap
}

func TestRestoreSwapContinuesRun(t *testing.T) {
	const (
		dur = 60 * simclock.Second
		mid = 30 * simclock.Second
	)
	// Old policy runs the first half...
	old := buildCkptEngine(t, tpp.New(tpp.Config{}), BasePages, faultinject.Plan{}, 1)
	snap := snapshotAt(t, old, mid, dur)

	// ...and the snapshot round-trips through bytes like a real swap does
	// (the daemon hands the state between two engine builds).
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}

	swapOnce := func() []byte {
		var st EngineState
		if err := json.Unmarshal(blob, &st); err != nil {
			t.Fatal(err)
		}
		neu := buildCkptEngine(t, memtis.New(memtis.Config{}), BasePages, faultinject.Plan{}, 1)
		dropped, err := neu.RestoreSwap(&st)
		if err != nil {
			t.Fatalf("restore-swap: %v", err)
		}
		if dropped == 0 {
			t.Fatal("swap from TPP to Memtis dropped no old-policy events")
		}
		if now := neu.Clock().Now(); now != simclock.Time(mid) {
			t.Fatalf("post-swap clock at %v, want %v", now, mid)
		}
		// The run continues, not restarts: pre-swap metrics carry over.
		if got, want := neu.metricsState().Accesses, st.Metrics.Accesses; got != want {
			t.Fatalf("post-swap accesses %v, want snapshot's %v", got, want)
		}
		neu.ResumeRun()
		if now := neu.Clock().Now(); now < simclock.Time(dur) {
			t.Fatalf("swapped run stopped at %v, want %v", now, dur)
		}
		if got := neu.metricsState().Accesses; got <= st.Metrics.Accesses {
			t.Fatalf("no accesses after swap (got %v, snapshot %v) — run dropped", got, st.Metrics.Accesses)
		}
		return finalState(t, neu)
	}

	first := swapOnce()
	second := swapOnce()
	if !bytes.Equal(first, second) {
		t.Fatalf("policy swap not deterministic (%s)", diffHint(second, first))
	}
}

// A swapped run must itself stay checkpointable: snapshot → swap →
// snapshot → restore (same new policy) → resume must match the swapped
// run that never stopped. This is what lets the daemon keep periodic
// crash-recovery checkpoints across a live reconfiguration.
func TestRestoreSwapRemainsCheckpointable(t *testing.T) {
	const (
		dur  = 60 * simclock.Second
		mid  = 20 * simclock.Second
		mid2 = 40 * simclock.Second
	)
	old := buildCkptEngine(t, tpp.New(tpp.Config{}), BasePages, faultinject.Plan{}, 1)
	snap := snapshotAt(t, old, mid, dur)

	// Reference: swap and run straight to the end.
	ref := buildCkptEngine(t, memtis.New(memtis.Config{}), BasePages, faultinject.Plan{}, 1)
	if _, err := ref.RestoreSwap(snap); err != nil {
		t.Fatalf("restore-swap: %v", err)
	}
	ref.ResumeRun()
	want := finalState(t, ref)

	// Victim: swap, run to mid2, snapshot, then restore normally (same
	// policy now) into a third build and finish.
	vic := buildCkptEngine(t, memtis.New(memtis.Config{}), BasePages, faultinject.Plan{}, 1)
	if _, err := vic.RestoreSwap(snap); err != nil {
		t.Fatalf("restore-swap: %v", err)
	}
	snap2 := snapshotAtResume(t, vic, mid2)

	res := buildCkptEngine(t, memtis.New(memtis.Config{}), BasePages, faultinject.Plan{}, 1)
	if err := res.Restore(snap2); err != nil {
		t.Fatalf("restore after swap: %v", err)
	}
	res.ResumeRun()
	if got := finalState(t, res); !bytes.Equal(got, want) {
		t.Fatalf("checkpoint across a swap diverged (%s)", diffHint(got, want))
	}
}

// snapshotAtResume is snapshotAt for an engine that continues with
// ResumeRun (the horizon is already restored).
func snapshotAtResume(t *testing.T, e *Engine, mid simclock.Duration) *EngineState {
	t.Helper()
	var snap *EngineState
	e.Clock().SetAfterStep(func() {
		if snap == nil && e.Clock().Now() >= simclock.Time(mid) {
			s, err := e.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			snap = s
			e.Clock().Stop()
		}
	})
	e.ResumeRun()
	if snap == nil {
		t.Fatal("snapshot hook never fired")
	}
	return snap
}

// Restore (non-swap) must still reject a policy mismatch — RestoreSwap is
// an explicit opt-in, not a loosening of the default fence.
func TestRestoreSwapIsExplicit(t *testing.T) {
	old := buildCkptEngine(t, tpp.New(tpp.Config{}), BasePages, faultinject.Plan{}, 1)
	snap := snapshotAt(t, old, 10*simclock.Second, 30*simclock.Second)
	neu := buildCkptEngine(t, memtis.New(memtis.Config{}), BasePages, faultinject.Plan{}, 1)
	if err := neu.Restore(snap); err == nil {
		t.Fatal("plain Restore accepted a cross-policy checkpoint")
	}
}
