package engine

import (
	"strings"
	"testing"

	"chrono/internal/mem"
	"chrono/internal/simclock"
)

// mustViolate asserts that CheckInvariants panics with an invariant
// violation whose message contains want.
func mustViolate(t *testing.T, e *Engine, want string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("CheckInvariants did not panic, want violation containing %q", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "invariant violation") {
			panic(r) // not ours — re-raise
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("violation %q does not mention %q", msg, want)
		}
	}()
	e.CheckInvariants()
}

// sanitizedEngine builds a small engine with the sanitizer enabled, maps
// a process, and runs it briefly so all bookkeeping is exercised.
func sanitizedEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(Config{Seed: 7, FastGB: 4, SlowGB: 12, DebugChecks: true})
	addUniformProc(e, 1, 2000, 0.8)
	if err := e.MapAll(BasePages); err != nil {
		t.Fatal(err)
	}
	e.AttachPolicy(&recordingPolicy{})
	e.Run(simclock.Second)
	return e
}

func TestSanitizerCleanRun(t *testing.T) {
	e := sanitizedEngine(t) // Run already sanitizes every epoch
	e.CheckInvariants()     // and the final state must also hold
}

func TestSanitizerCatchesTierMismatch(t *testing.T) {
	e := sanitizedEngine(t)
	// Flip a page's tier without moving it between LRU lists or fixing
	// any counters: the page now claims residency its tier never granted.
	pg := e.Pages()[0]
	pg.Tier = pg.Tier.Other()
	mustViolate(t, e, "LRU")
}

func TestSanitizerCatchesProcCounterDrift(t *testing.T) {
	e := sanitizedEngine(t)
	e.byPID[1].residentFast++
	mustViolate(t, e, "residency counters")
}

func TestSanitizerCatchesLRUDrop(t *testing.T) {
	e := sanitizedEngine(t)
	// Silently remove a fast-resident page from its kernel LRU.
	for _, pg := range e.Pages() {
		if pg.Tier == mem.FastTier {
			e.kLRU[mem.FastTier].Drop(pg.ID)
			break
		}
	}
	mustViolate(t, e, "not on its tier's LRU")
}

func TestSanitizerCatchesMigrationDrift(t *testing.T) {
	e := sanitizedEngine(t)
	e.M.MigratedBytes += 10 * float64(e.node.PageSizeBytes)
	mustViolate(t, e, "reconciles")
}

func TestSanitizerGatedByConfig(t *testing.T) {
	if sanitizeDefault {
		t.Skip("simdebug build forces the sanitizer on")
	}
	e := New(Config{Seed: 7, FastGB: 4, SlowGB: 12})
	addUniformProc(e, 1, 500, 1)
	if err := e.MapAll(BasePages); err != nil {
		t.Fatal(err)
	}
	e.AttachPolicy(&recordingPolicy{})
	e.byPID[1].residentFast++ // corrupt before Run: sanitizer must not fire
	e.Run(simclock.Second)
}
