package engine

// The checkpoint fence: a run that is snapshotted mid-flight, rebuilt
// from scratch, restored, and resumed must end in *bit-identical* state
// to the run that never stopped — metrics, histograms, page table, node
// accounting, and the policy's own counters. Any field the snapshot
// misses, any RNG draw the restore path adds or drops, and any event
// reordering shows up here as a byte diff.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"chrono/internal/core"
	"chrono/internal/faultinject"
	"chrono/internal/policy"
	"chrono/internal/policy/flexmem"
	"chrono/internal/policy/memtis"
	"chrono/internal/policy/tpp"
	"chrono/internal/simclock"
	"chrono/internal/vm"
)

// buildCkptEngine constructs the fence scenario: one process with a
// skewed pattern whose hot tail starts in the slow tier, so every policy
// has promotion work to do across the snapshot point.
func buildCkptEngine(t *testing.T, pol policy.Policy, mode PageSizeMode, faults faultinject.Plan, shards int) *Engine {
	t.Helper()
	// ShardWorkers 2 keeps the concurrent materialization path exercised
	// (and under -race, raced) whenever shards > 1.
	e := New(Config{Seed: 7, FastGB: 4, SlowGB: 12, Faults: faults, Shards: shards, ShardWorkers: 2})
	p := vm.NewProcess(1, "ckpt", 3000)
	start := p.VMAs()[0].Start
	for i := uint64(0); i < 3000; i++ {
		w := 1.0
		if i >= 2500 { // hot tail lands slow under fill-fast-first mapping
			w = 60
		}
		p.SetPattern(start+i, w, 0.7)
	}
	e.AddProcess(p, 4)
	if err := e.MapAll(mode); err != nil {
		t.Fatal(err)
	}
	e.AttachPolicy(pol)
	return e
}

// finalState marshals everything the fence compares: the engine's own
// serializable state at end of run plus the policy's checkpoint state.
func finalState(t *testing.T, e *Engine) []byte {
	t.Helper()
	st := struct {
		Metrics MetricsState   `json:"metrics"`
		Pages   PageTableState `json:"pages"`
		Procs   []ProcRecord   `json:"procs"`
		Node    any            `json:"node"`
		Policy  any            `json:"policy"`
		Now     simclock.Time  `json:"now"`
	}{
		Metrics: e.metricsState(),
		Pages:   e.pageTableState(),
		Node:    e.node.State(),
		Now:     e.clock.Now(),
	}
	for _, ps := range e.procs {
		st.Procs = append(st.Procs, ProcRecord{
			PID: ps.proc.PID, WRead: ps.wRead, WWrite: ps.wWrite,
			WTot: ps.wTot, WSwap: ps.wSwap, Rate: ps.rate,
			FaultOverheadNS: ps.faultOverheadNS, EpochFaults: ps.epochFaults,
			ResidentFast: ps.residentFast, ResidentSlow: ps.residentSlow,
			ResidentSwap: ps.residentSwap,
		})
	}
	if cp, ok := e.pol.(policy.Checkpointable); ok {
		pst, err := cp.CheckpointState()
		if err != nil {
			t.Fatalf("final policy state: %v", err)
		}
		st.Policy = pst
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func newFencePolicy(t *testing.T, name string) (policy.Policy, PageSizeMode) {
	t.Helper()
	switch name {
	case "TPP":
		return tpp.New(tpp.Config{}), BasePages
	case "Memtis":
		// Huge pages exercise the SplitHuge page-table reconciliation.
		return memtis.New(memtis.Config{}), HugePages
	case "FlexMem":
		return flexmem.New(flexmem.Config{}), HugePages
	case "Chrono":
		return core.New(core.Options{}), BasePages
	case "Nomad":
		return policy.NewNomad(policy.NomadConfig{}), BasePages
	case "TPP+guard":
		// The guard wrapper must keep the inner policy's durability class:
		// guardedCkpt serializes the detector columns alongside TPP's state.
		return policy.WithThrashGuard(tpp.New(tpp.Config{}), policy.ThrashConfig{}), BasePages
	case "Memtis+guard":
		// Guarded huge-page inner: SplitHuge reconciliation under the wrapper.
		return policy.WithThrashGuard(memtis.New(memtis.Config{}), policy.ThrashConfig{}), HugePages
	}
	t.Fatalf("unknown fence policy %s", name)
	return nil, BasePages
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	const (
		dur = 60 * simclock.Second
		mid = 30 * simclock.Second
	)
	plans := map[string]faultinject.Plan{
		"clean":  {},
		"faulty": faultinject.Aggressive(),
	}
	for _, polName := range []string{"TPP", "Memtis", "FlexMem", "Chrono", "Nomad", "TPP+guard", "Memtis+guard"} {
		for planName, plan := range plans {
			for _, shards := range []int{1, 8} {
				t.Run(fmt.Sprintf("%s/%s/shards=%d", polName, planName, shards), func(t *testing.T) {
					// Reference: run straight through.
					pol, mode := newFencePolicy(t, polName)
					ref := buildCkptEngine(t, pol, mode, plan, shards)
					ref.Run(dur)
					want := finalState(t, ref)

					// Interrupted: snapshot at the first event past mid, keep
					// running (the snapshot must not perturb the run), then
					// restore the snapshot into a fresh build and resume.
					pol2, _ := newFencePolicy(t, polName)
					victim := buildCkptEngine(t, pol2, mode, plan, shards)
					var snap *EngineState
					victim.Clock().SetAfterStep(func() {
						if snap == nil && victim.Clock().Now() >= mid {
							s, err := victim.Snapshot()
							if err != nil {
								t.Fatalf("snapshot: %v", err)
							}
							snap = s
						}
					})
					victim.Run(dur)
					if snap == nil {
						t.Fatal("snapshot hook never fired")
					}
					if got := finalState(t, victim); !bytes.Equal(got, want) {
						t.Fatalf("snapshotting perturbed the run (%s)", diffHint(got, want))
					}

					// The snapshot must round-trip through bytes, like a real
					// checkpoint file does.
					blob, err := json.Marshal(snap)
					if err != nil {
						t.Fatal(err)
					}
					var loaded EngineState
					if err := json.Unmarshal(blob, &loaded); err != nil {
						t.Fatal(err)
					}

					pol3, _ := newFencePolicy(t, polName)
					resumed := buildCkptEngine(t, pol3, mode, plan, shards)
					if err := resumed.Restore(&loaded); err != nil {
						t.Fatalf("restore: %v", err)
					}
					resumed.ResumeRun()
					if got := finalState(t, resumed); !bytes.Equal(got, want) {
						t.Fatalf("resumed run diverged (%s)", diffHint(got, want))
					}

					// Pending-fault state is flat in the checkpoint, so a
					// snapshot taken under one shard count must restore and
					// resume under another — to the same final state.
					pol4, _ := newFencePolicy(t, polName)
					cross := buildCkptEngine(t, pol4, mode, plan, 3)
					if err := cross.Restore(&loaded); err != nil {
						t.Fatalf("cross-shard restore: %v", err)
					}
					cross.ResumeRun()
					if got := finalState(t, cross); !bytes.Equal(got, want) {
						t.Fatalf("cross-shard-count resume diverged (%s)", diffHint(got, want))
					}
				})
			}
		}
	}
}

// diffHint locates the first differing byte for a readable failure.
func diffHint(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			hi := i + 60
			g, w := hi, hi
			if g > len(got) {
				g = len(got)
			}
			if w > len(want) {
				w = len(want)
			}
			return "first diff at byte " + itoa(i) + ": got ..." + string(got[lo:g]) + "... want ..." + string(want[lo:w]) + "..."
		}
	}
	return "lengths differ: " + itoa(len(got)) + " vs " + itoa(len(want))
}

func itoa(i int) string {
	return string(json.RawMessage(jsonInt(i)))
}

func jsonInt(i int) []byte {
	b, _ := json.Marshal(i)
	return b
}

// TestSnapshotFailsOnUnkeyedEvents: an engine with an anonymous harness
// ticker (e.g. workload drift or RunScored's sampler) must refuse to
// snapshot instead of producing a checkpoint that cannot resume.
func TestSnapshotFailsOnUnkeyedEvents(t *testing.T) {
	pol, mode := newFencePolicy(t, "TPP")
	e := buildCkptEngine(t, pol, mode, faultinject.Plan{}, 1)
	e.Clock().Every(simclock.Second, func(now simclock.Time) {})
	var got error
	e.Clock().SetAfterStep(func() {
		if got == nil && e.Clock().Now() >= 2*simclock.Second {
			_, err := e.Snapshot()
			if err == nil {
				t.Fatal("snapshot succeeded with an unkeyed ticker armed")
			}
			got = err
		}
	})
	e.Run(5 * simclock.Second)
	if got == nil {
		t.Fatal("snapshot never attempted")
	}
}

// TestRestoreRejectsMismatch: a checkpoint only restores into an engine
// built the same way — different policy or a changed fault plan is a
// clear error, not silent divergence.
func TestRestoreRejectsMismatch(t *testing.T) {
	pol, mode := newFencePolicy(t, "TPP")
	e := buildCkptEngine(t, pol, mode, faultinject.Plan{}, 1)
	var snap *EngineState
	e.Clock().SetAfterStep(func() {
		if snap == nil && e.Clock().Now() >= 10*simclock.Second {
			s, err := e.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			snap = s
		}
	})
	e.Run(20 * simclock.Second)
	if snap == nil {
		t.Fatal("no snapshot")
	}

	wrongPol, wrongMode := newFencePolicy(t, "Memtis")
	other := buildCkptEngine(t, wrongPol, wrongMode, faultinject.Plan{}, 1)
	if err := other.Restore(snap); err == nil {
		t.Fatal("restore into a different policy succeeded")
	}

	pol2, _ := newFencePolicy(t, "TPP")
	faulty := buildCkptEngine(t, pol2, mode, faultinject.Aggressive(), 1)
	if err := faulty.Restore(snap); err == nil {
		t.Fatal("restore into a different fault plan succeeded")
	}
}
