package engine

// Sharded fault machinery: the page-ID space is partitioned across
// Config.Shards shards (owner = ID mod Shards), each owning a pending-fault
// timer queue and a deferred-Protect list. Protect no longer draws a gap or
// schedules a clock event; it records a deferred Protect on the owner shard,
// and the gap draw ("materialization") happens when the engine next drains
// faults — in parallel across shards when ShardWorkers allows.
//
// Determinism argument (DESIGN.md "Sharded execution"):
//
//   - The gap draw is the stateless rng.Hash of (faultSeed, page ID, fault
//     seq) — no stream position, so the value is independent of which shard
//     evaluates it and of materialization order.
//   - Every input of materialization (page rate, ProtTS, injected delay) is
//     frozen at Protect time or derived from state no shard mutates during
//     a materialization pass; workers only push into their own queue.
//   - Replay is a serial k-way merge: the globally earliest entry by
//     (At, ID, Seq) fires first, a total order independent of the shard
//     count and of per-queue insertion order.
//
// Shards therefore only change *where* pending timers live and *how many
// cores* compute the draws; the replayed fault sequence is byte-identical
// for every shard count and worker count.

import (
	"math"
	"sync"

	"chrono/internal/mem"
	"chrono/internal/rng"
	"chrono/internal/simclock"
	"chrono/internal/units"
	"chrono/internal/vm"
)

// parallelMaterializeMin is the pending-Protect batch size below which
// materialization stays inline: a handful of draws is cheaper than the
// goroutine handoff.
const parallelMaterializeMin = 128

// pendingProt is one deferred Protect awaiting materialization. The injected
// delivery delay is drawn at Protect time (the injector stream is serial),
// so materialization needs no stateful randomness.
type pendingProt struct {
	id    int64
	seq   uint64
	delay simclock.Duration
}

// engineShard owns the fault state of the page IDs congruent to its index
// modulo the shard count.
type engineShard struct {
	queue   simclock.ShardQueue //chrono:owned
	pending []pendingProt       //chrono:owned
}

// ownerShard returns the shard owning a page ID.
func (e *Engine) ownerShard(id int64) *engineShard {
	return e.shards[id%int64(len(e.shards))]
}

// havePending reports whether any shard holds unmaterialized Protects.
//
//chrono:merge fan-in scan: reads every shard's pending count, serial
func (e *Engine) havePending() bool {
	for _, sh := range e.shards {
		if len(sh.pending) > 0 {
			return true
		}
	}
	return false
}

// materializeShard turns one shard's deferred Protects into timed queue
// entries. Safe to run concurrently with other shards' materialization: it
// reads only page/process state frozen during the pass and writes only its
// own queue.
func (e *Engine) materializeShard(sh *engineShard, now simclock.Time) {
	for _, pp := range sh.pending {
		if pp.id < 0 || pp.id >= int64(len(e.pages)) {
			continue
		}
		pg := e.pages[pp.id]
		// Stale deferred Protects (page re-protected, unprotected, or freed
		// since) drop here; the seq match keeps exactly the latest Protect.
		if pg == nil || pg.FaultSeq != pp.seq || !pg.Flags.Has(vm.FlagProtNone) {
			continue
		}
		rate := e.PageRate(pg)
		if rate < minFaultRate {
			continue
		}
		u := rng.HashFloat64(e.faultSeed, uint64(pp.id), pp.seq)
		var gapS units.Sec
		switch e.cfg.Gap {
		case GapExp:
			gapS = units.Sec(-math.Log(1-u) / rate)
		default:
			gapS = units.Sec(u / rate)
		}
		at := pg.ProtTS + gapS.Duration() + pp.delay
		if at < now {
			at = now // defensive: replay never moves the clock backwards
		}
		if at > e.horizon {
			continue
		}
		sh.queue.Push(simclock.ShardEntry{At: at, ID: pp.id, Seq: pp.seq})
	}
	sh.pending = sh.pending[:0]
}

// materializePending drains every shard's deferred Protects into timed
// entries, fanning out across shard workers when the batch is large enough
// to pay for the handoff. The execution strategy (inline vs. workers) never
// affects results; see the determinism argument above.
//
//chrono:merge fan-out fence: each shard is handed to exactly one worker
func (e *Engine) materializePending() {
	total := 0
	for _, sh := range e.shards {
		total += len(sh.pending)
	}
	if total == 0 {
		return
	}
	now := e.clock.Now()
	if e.shardWorkers > 1 && total >= parallelMaterializeMin {
		w := e.shardWorkers
		if w > len(e.shards) {
			w = len(e.shards)
		}
		var wg sync.WaitGroup
		wg.Add(w)
		for k := 0; k < w; k++ {
			//chrono:allow hotalloc worker closure amortized over >=parallelMaterializeMin draws
			go func(k int) {
				defer wg.Done()
				// Striped ownership: each shard is touched by exactly one
				// worker, so queues are never shared between goroutines.
				for i := k; i < len(e.shards); i += w {
					if sh := e.shards[i]; len(sh.pending) > 0 {
						e.materializeShard(sh, now)
					}
				}
			}(k)
		}
		wg.Wait()
		return
	}
	for _, sh := range e.shards {
		if len(sh.pending) > 0 {
			e.materializeShard(sh, now)
		}
	}
}

// peekEarliest returns the globally earliest pending fault entry across all
// shard queues under the canonical (At, ID, Seq) order, or nil when every
// queue is empty.
//
//chrono:merge k-way merge head: inspects every shard queue, serial
func (e *Engine) peekEarliest() (simclock.ShardEntry, *engineShard) {
	var best simclock.ShardEntry
	var bestSh *engineShard
	for _, sh := range e.shards {
		en, ok := sh.queue.Peek()
		if !ok {
			continue
		}
		if bestSh == nil || en.Before(best) {
			best, bestSh = en, sh
		}
	}
	return best, bestSh
}

// drainFaults materializes deferred Protects and replays pending hint
// faults in canonical order up to limit, stopping early when a master clock
// event (epoch tick, policy timer — including timers scheduled by OnFault
// mid-replay) comes due first. Per-fault metric charges accumulate into a
// batch flushed on return, before any master event can observe them.
// Reports whether at least one fault was replayed.
//
// Termination: each iteration either pops a queue entry or breaks;
// materialization always empties the pending lists, and new pendings appear
// only from OnFault — which consumed an entry to run.
//
//chrono:merge serial replay loop: pops from whichever shard is earliest
//chrono:hotpath
func (e *Engine) drainFaults(limit simclock.Time) bool {
	replayed := false
	var perTier [mem.NumTiers]int64
	for {
		// Re-materialize before every pop: an OnFault-issued Protect can
		// produce an entry earlier than the current queue minimum, and the
		// canonical order must see it.
		e.materializePending()
		best, sh := e.peekEarliest()
		if sh == nil || best.At > limit || e.clock.NextAt() < best.At {
			break
		}
		sh.queue.PopLE(best.At)
		if best.ID < 0 || best.ID >= int64(len(e.pages)) {
			continue
		}
		pg := e.pages[best.ID]
		if pg == nil || pg.FaultSeq != best.Seq || !pg.Flags.Has(vm.FlagProtNone) {
			continue // stale timer: page re-protected, unprotected, or freed
		}
		e.clock.AdvanceTo(best.At)
		pg.Flags &^= vm.FlagProtNone
		pg.LastFault = best.At
		perTier[pg.Tier]++
		e.procs[pg.Proc.Slot].epochFaults++
		replayed = true
		// Hint faults do NOT rotate the kernel LRU: the real fault handler
		// never touches the lists, and reclaim learns about references only
		// through its own (slow) accessed-bit scans. Giving the LRU
		// fault-recency information would make reclaim unrealistically sharp.
		if e.pol != nil {
			e.pol.OnFault(pg, best.At)
		}
	}
	e.flushFaultBatch(&perTier)
	return replayed
}

// flushFaultBatch applies the accumulated metric charges of one replay
// batch: fault counts, context switches, kernel time, and the per-tier
// latency observations (each replayed fault stands for CostScale real page
// faults that saw the fault-handling latency on top of their tier latency).
func (e *Engine) flushFaultBatch(perTier *[mem.NumTiers]int64) {
	var n int64
	for _, c := range perTier {
		n += c
	}
	if n == 0 {
		return
	}
	fn := float64(n)
	e.M.Faults += fn
	e.M.ContextSwitches += fn
	e.ChargeKernel(e.cfg.FaultKernelNS.Mul(e.cfg.CostScale).Mul(fn))
	for t := mem.TierID(0); t < mem.NumTiers; t++ {
		c := perTier[t]
		if c == 0 {
			continue
		}
		lat := float64(e.cfg.FaultLatencyNS + e.cfg.Latency.Access(t, false))
		w := float64(c) * e.cfg.CostScale
		e.M.Lat.Add(lat, w)
		e.M.LatRead.Add(lat, w)
	}
}

// runLoop is the engine's event loop: replay due faults, then fire the next
// master event, until the horizon. Faults at time t fire before a master
// event at t, and the afterStep hook (checkpoint safe points, watchdogs)
// runs only at master-event boundaries — exactly the instants Snapshot is
// specified for.
//
//chrono:hotpath
func (e *Engine) runLoop() {
	for !e.clock.Stopped() {
		next := e.clock.NextAt()
		limit := next
		if e.horizon < limit {
			limit = e.horizon
		}
		if e.drainFaults(limit) {
			continue
		}
		if next > e.horizon {
			break
		}
		if !e.clock.StepAfter() {
			break
		}
	}
	if !e.clock.Stopped() && e.clock.Now() < e.horizon {
		e.clock.AdvanceTo(e.horizon)
	}
}
