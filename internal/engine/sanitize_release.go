//go:build !simdebug

package engine

// sanitizeDefault leaves the invariant sanitizer opt-in (Config.DebugChecks)
// in regular builds; build with -tags simdebug to force it on everywhere.
const sanitizeDefault = false
