package engine

import (
	"testing"

	"chrono/internal/faultinject"
	"chrono/internal/mem"
	"chrono/internal/policy"
	"chrono/internal/rng"
	"chrono/internal/simclock"
	"chrono/internal/vm"
)

// chaosPolicy performs random protect/unprotect/promote/demote/split
// operations to stress the engine's invariants: a fuzzer for the kernel
// surface.
type chaosPolicy struct {
	policy.Base
	k policy.Kernel
	r *rng.Source
}

func (c *chaosPolicy) Name() string { return "chaos" }

func (c *chaosPolicy) Attach(k policy.Kernel) {
	c.k = k
	c.r = rng.New(1234)
	k.Clock().Every(100*simclock.Millisecond, func(now simclock.Time) {
		pages := k.Pages()
		for i := 0; i < 64; i++ {
			pg := pages[c.r.Intn(len(pages))]
			if pg == nil {
				continue
			}
			switch c.r.Intn(6) {
			case 0:
				k.Protect(pg)
			case 1:
				k.Unprotect(pg)
			case 2:
				k.Promote(pg)
			case 3:
				k.Demote(pg)
			case 4:
				k.AccessedTestAndClear(pg)
			case 5:
				if pg.IsHuge() {
					k.SplitHuge(pg)
					pages = k.Pages() // slice grew
				}
			}
		}
	})
}

func (c *chaosPolicy) OnFault(pg *vm.Page, now simclock.Time) {
	// Randomly migrate from the fault path too.
	if c.r.Bool(0.3) {
		c.k.Promote(pg)
	}
}

// checkInvariants validates global engine consistency.
func checkInvariants(t *testing.T, e *Engine) {
	t.Helper()
	node := e.Node()
	// Capacity conservation per tier.
	var residentFast, residentSlow int64
	seen := make(map[int64]bool)
	for _, pg := range e.Pages() {
		if pg == nil {
			continue
		}
		if seen[pg.ID] {
			t.Fatal("duplicate page ID in page table")
		}
		seen[pg.ID] = true
		switch pg.Tier {
		case mem.FastTier:
			residentFast += int64(pg.Size)
		case mem.SlowTier:
			residentSlow += int64(pg.Size)
		default:
			t.Fatalf("page %d in invalid tier %v", pg.ID, pg.Tier)
		}
		// Every resident page is reachable through its process's table.
		if got := pg.Proc.PageAt(pg.VPN); got != pg {
			t.Fatalf("page %d not reachable via its process", pg.ID)
		}
	}
	if residentFast != node.Used(mem.FastTier) {
		t.Fatalf("fast tier accounting: pages say %d, node says %d",
			residentFast, node.Used(mem.FastTier))
	}
	if residentSlow != node.Used(mem.SlowTier) {
		t.Fatalf("slow tier accounting: pages say %d, node says %d",
			residentSlow, node.Used(mem.SlowTier))
	}
	if node.Free(mem.FastTier) < 0 || node.Free(mem.SlowTier) < 0 {
		t.Fatal("negative free pages")
	}
	// Per-process aggregates match a recompute.
	for _, p := range e.Processes() {
		ps := e.byPID[p.PID]
		var wantFast, wantSlow float64
		counted := make(map[int64]bool)
		for _, v := range p.VMAs() {
			for vpn := v.Start; vpn < v.End(); vpn++ {
				pg := p.PageAt(vpn)
				if pg == nil || counted[pg.ID] {
					continue
				}
				counted[pg.ID] = true
				w, _ := p.PageWeight(pg)
				if pg.Tier == mem.FastTier {
					wantFast += w
				} else {
					wantSlow += w
				}
			}
		}
		gotFast := ps.wRead[mem.FastTier] + ps.wWrite[mem.FastTier]
		gotSlow := ps.wRead[mem.SlowTier] + ps.wWrite[mem.SlowTier]
		if !close2(gotFast, wantFast) || !close2(gotSlow, wantSlow) {
			t.Fatalf("pid %d aggregates drifted: fast %v/%v slow %v/%v",
				p.PID, gotFast, wantFast, gotSlow, wantSlow)
		}
	}
}

func close2(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if b > 1 {
		scale = b
	}
	return d/scale < 1e-6
}

// TestChaosInvariants runs the fuzzing policy over a mixed base/huge
// system and validates every invariant repeatedly.
func TestChaosInvariants(t *testing.T) {
	for _, mode := range []PageSizeMode{BasePages, HugePages} {
		e := New(Config{Seed: 777, FastGB: 4, SlowGB: 12})
		p := vm.NewProcess(1, "chaos", 2048)
		start := p.VMAs()[0].Start
		for i := uint64(0); i < 2048; i++ {
			w := float64(i%13) / 3
			p.SetPattern(start+i, w, 0.6)
		}
		e.AddProcess(p, 2)
		if err := e.MapAll(mode); err != nil {
			t.Fatal(err)
		}
		e.AttachPolicy(&chaosPolicy{})
		for round := 0; round < 10; round++ {
			e.Run(5 * simclock.Second)
			checkInvariants(t, e)
		}
		if e.M.Promotions == 0 && e.M.Demotions == 0 {
			t.Fatal("chaos produced no migrations; fuzzing is inert")
		}
	}
}

// TestChaosInvariantsUnderFaults reruns the fuzzing policy with the
// aggressive fault plan and the sanitizer forced on: the kernel surface
// must keep every invariant while ~20% of migrations abort and alloc
// failures fire near the watermarks. The chaos policy calls the legacy
// bool Promote/Demote, so this also proves the transient/capacity split
// degrades cleanly for callers that never look at MigrateResult.
func TestChaosInvariantsUnderFaults(t *testing.T) {
	for _, mode := range []PageSizeMode{BasePages, HugePages} {
		e := New(Config{
			Seed: 777, FastGB: 4, SlowGB: 12,
			Faults:      faultinject.Aggressive(),
			DebugChecks: true,
		})
		p := vm.NewProcess(1, "chaos", 2048)
		start := p.VMAs()[0].Start
		for i := uint64(0); i < 2048; i++ {
			w := float64(i%13) / 3
			p.SetPattern(start+i, w, 0.6)
		}
		e.AddProcess(p, 2)
		if err := e.MapAll(mode); err != nil {
			t.Fatal(err)
		}
		e.AttachPolicy(&chaosPolicy{})
		for round := 0; round < 10; round++ {
			e.Run(5 * simclock.Second)
			checkInvariants(t, e)
		}
		if e.M.Promotions == 0 && e.M.Demotions == 0 {
			t.Fatal("chaos under faults produced no migrations at all")
		}
		if e.M.FailedPromotions == 0 && e.M.FailedDemotions == 0 {
			t.Fatal("aggressive plan aborted no chaos migrations; injection is inert")
		}
		if e.Injector().Count(faultinject.MigrationBusy) == 0 {
			t.Fatal("no migration-busy faults drawn")
		}
	}
}

// TestChaosDeterminism: the fuzzed run is still fully deterministic.
func TestChaosDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		e := New(Config{Seed: 555, FastGB: 4, SlowGB: 12})
		p := vm.NewProcess(1, "chaos", 1024)
		start := p.VMAs()[0].Start
		for i := uint64(0); i < 1024; i++ {
			p.SetPattern(start+i, float64(i%7), 0.5)
		}
		e.AddProcess(p, 1)
		if err := e.MapAll(BasePages); err != nil {
			t.Fatal(err)
		}
		e.AttachPolicy(&chaosPolicy{})
		m := e.Run(20 * simclock.Second)
		return m.Accesses, m.Promotions
	}
	a1, p1 := run()
	a2, p2 := run()
	if a1 != a2 || p1 != p2 {
		t.Fatalf("chaos runs diverged: %v/%v vs %v/%v", a1, p1, a2, p2)
	}
}

// TestChaosDeterminismUnderFaults: a fixed (seed, plan) pins the injected
// faults too — the fuzzed, fault-injected run is bit-reproducible, and
// the injector draws the same counts every time.
func TestChaosDeterminismUnderFaults(t *testing.T) {
	run := func() (float64, int64, int64, int64) {
		e := New(Config{
			Seed: 555, FastGB: 4, SlowGB: 12,
			Faults: faultinject.Aggressive(),
		})
		p := vm.NewProcess(1, "chaos", 1024)
		start := p.VMAs()[0].Start
		for i := uint64(0); i < 1024; i++ {
			p.SetPattern(start+i, float64(i%7), 0.5)
		}
		e.AddProcess(p, 1)
		if err := e.MapAll(BasePages); err != nil {
			t.Fatal(err)
		}
		e.AttachPolicy(&chaosPolicy{})
		m := e.Run(20 * simclock.Second)
		return m.Accesses, m.Promotions, m.FailedPromotions, e.Injector().Total()
	}
	a1, p1, f1, i1 := run()
	a2, p2, f2, i2 := run()
	if a1 != a2 || p1 != p2 || f1 != f2 || i1 != i2 {
		t.Fatalf("faulted chaos runs diverged: %v/%v/%v/%v vs %v/%v/%v/%v",
			a1, p1, f1, i1, a2, p2, f2, i2)
	}
	if f1 == 0 || i1 == 0 {
		t.Fatalf("aggressive plan was inert: failed=%d injected=%d", f1, i1)
	}
}
