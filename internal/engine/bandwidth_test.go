package engine

import (
	"math"
	"testing"

	"chrono/internal/mem"
	"chrono/internal/simclock"
	"chrono/internal/units"
	"chrono/internal/vm"
)

func TestQueueMultShape(t *testing.T) {
	if got := queueMult(0); got != 1 {
		t.Fatalf("queueMult(0)=%v", got)
	}
	// Strictly increasing in utilization.
	prev := 0.0
	for u := 0.0; u <= 2.0; u += 0.05 {
		m := queueMult(u)
		if m <= prev {
			t.Fatalf("queueMult not increasing at u=%v", u)
		}
		prev = m
	}
	// Saturation explodes but stays finite (capped at 0.97).
	if m := queueMult(5); math.IsInf(m, 0) || m < 10 {
		t.Fatalf("saturated multiplier %v", m)
	}
	// Negative utilization clamps.
	if queueMult(-1) != 1 {
		t.Fatal("negative utilization not clamped")
	}
}

// TestSlowTrafficInflatesLatency: moving traffic to the slow tier must
// raise its utilization and the measured latency percentiles.
func TestSlowTrafficInflatesLatency(t *testing.T) {
	run := func(slowHeavy bool) (*Metrics, float64) {
		e := newTestEngine(31)
		p := vm.NewProcess(1, "bw", 2000)
		start := p.VMAs()[0].Start
		for i := uint64(0); i < 2000; i++ {
			w := 1.0
			if slowHeavy {
				// Hot mass at the end (starts in the slow tier).
				if i >= 1500 {
					w = 100
				}
			} else {
				// Hot mass at the front (starts in the fast tier).
				if i < 500 {
					w = 100
				}
			}
			p.SetPattern(start+i, w, 0.3) // write-heavy: Optane's weak side
		}
		e.AddProcess(p, 8)
		if err := e.MapAll(BasePages); err != nil {
			t.Fatal(err)
		}
		e.AttachPolicy(&recordingPolicy{}) // no migration: placement frozen
		m := e.Run(30 * simclock.Second)
		return m, e.SlowUtilization()
	}
	fastM, fastUtil := run(false)
	slowM, slowUtil := run(true)
	if slowUtil <= fastUtil {
		t.Fatalf("slow-heavy utilization %v <= fast-heavy %v", slowUtil, fastUtil)
	}
	if slowM.Throughput() >= fastM.Throughput() {
		t.Fatalf("slow-heavy throughput %v >= fast-heavy %v",
			slowM.Throughput(), fastM.Throughput())
	}
	if slowM.Lat.Percentile(0.9) <= fastM.Lat.Percentile(0.9) {
		t.Fatalf("slow-heavy P90 %v <= fast-heavy %v",
			slowM.Lat.Percentile(0.9), fastM.Lat.Percentile(0.9))
	}
}

// TestWriteHeavySuffersMoreOnSlow: Optane's read/write asymmetry — the
// same slow-resident mass hurts more when written.
func TestWriteHeavySuffersMoreOnSlow(t *testing.T) {
	run := func(readFrac float64) float64 {
		e := newTestEngine(33)
		p := vm.NewProcess(1, "rw", 2000)
		start := p.VMAs()[0].Start
		for i := uint64(0); i < 2000; i++ {
			w := 1.0
			if i >= 1500 {
				w = 100
			}
			p.SetPattern(start+i, w, readFrac)
		}
		e.AddProcess(p, 8)
		if err := e.MapAll(BasePages); err != nil {
			t.Fatal(err)
		}
		e.AttachPolicy(&recordingPolicy{})
		return e.Run(30 * simclock.Second).Throughput()
	}
	readHeavy := run(0.95)
	writeHeavy := run(0.05)
	if writeHeavy >= readHeavy {
		t.Fatalf("write-heavy %v >= read-heavy %v on a slow-resident hot set",
			writeHeavy, readHeavy)
	}
}

// TestMigrationTrafficContends: sustained migration raises slow-tier
// utilization even with demand traffic unchanged.
func TestMigrationTrafficContends(t *testing.T) {
	e := newTestEngine(35)
	addUniformProc(e, 1, 2000, 0.7)
	e.MapAll(BasePages)
	e.AttachPolicy(&recordingPolicy{})
	e.Run(5 * simclock.Second)
	before := e.SlowUtilization()
	// Churn pages back and forth for a while.
	tk := e.Clock().Every(250*simclock.Millisecond, func(now simclock.Time) {
		moved := 0
		for _, pg := range e.Pages() {
			if moved >= 20 {
				break
			}
			if pg.Tier == mem.SlowTier {
				if e.Promote(pg) {
					moved++
				}
			}
		}
		for _, pg := range e.Pages() {
			if moved >= 40 {
				break
			}
			if pg.Tier == mem.FastTier {
				if e.Demote(pg) {
					moved++
				}
			}
		}
	})
	e.Run(10 * simclock.Second)
	tk.Cancel()
	after := e.SlowUtilization()
	if after <= before {
		t.Fatalf("migration churn did not raise slow utilization: %v -> %v", before, after)
	}
}

// TestKernelTimePenalizesThroughput: charging large kernel time lowers
// the closed-loop rates.
func TestKernelTimePenalizesThroughput(t *testing.T) {
	run := func(burnNS units.NS) float64 {
		e := newTestEngine(37)
		addUniformProc(e, 1, 1000, 1)
		e.MapAll(BasePages)
		e.AttachPolicy(&recordingPolicy{})
		if burnNS > 0 {
			e.Clock().Every(250*simclock.Millisecond, func(simclock.Time) {
				e.ChargeKernel(burnNS)
			})
		}
		return e.Run(20 * simclock.Second).Throughput()
	}
	clean := run(0)
	// Burn ~40% of one CPU-equivalent of the epoch.
	burned := run(0.4 * 0.25 * 1e9)
	if burned >= clean {
		t.Fatalf("kernel burn did not reduce throughput: %v vs %v", burned, clean)
	}
}

// TestFaultOverheadFeedsBack: a policy that faults constantly reduces the
// faulting process's throughput via the per-access overhead estimate.
func TestFaultOverheadFeedsBack(t *testing.T) {
	run := func(protectAll bool) float64 {
		e := newTestEngine(39)
		addUniformProc(e, 1, 1000, 1)
		e.MapAll(BasePages)
		e.AttachPolicy(&recordingPolicy{})
		if protectAll {
			e.Clock().Every(simclock.Second, func(simclock.Time) {
				for _, pg := range e.Pages() {
					e.Protect(pg)
				}
			})
		}
		return e.Run(30 * simclock.Second).Throughput()
	}
	quiet := run(false)
	storm := run(true)
	if storm >= quiet {
		t.Fatalf("fault storm did not reduce throughput: %v vs %v", storm, quiet)
	}
}
