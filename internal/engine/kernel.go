package engine

import (
	"math"

	"chrono/internal/mem"
	"chrono/internal/pebs"
	"chrono/internal/policy"
	"chrono/internal/rng"
	"chrono/internal/simclock"
	"chrono/internal/units"
	"chrono/internal/vm"
)

// This file implements the policy.Kernel surface: hint-fault generation,
// accessed-bit emulation, migration, reclaim, and PEBS sampling.

// minFaultRate is the page rate below which no fault event is scheduled
// (the page would fault beyond any realistic horizon; the next scan
// restamps it anyway).
const minFaultRate = 1e-4 // < one access per ~3 virtual hours

// Protect poisons pg PROT_NONE and stamps the scan timestamp. The fault
// timer is deferred: Protect records (page, seq, injected delay) on the
// page's owner shard, and the gap draw happens at the next fault drain
// (shard.go), possibly in parallel. The draw is a stateless hash of
// (faultSeed, page ID, fault seq), so deferral changes neither the value
// nor any engine RNG stream.
func (e *Engine) Protect(pg *vm.Page) {
	if pg.Flags.Has(vm.FlagSwapped) {
		return // non-resident: there is no PTE to poison
	}
	pg.Flags |= vm.FlagProtNone
	pg.ProtTS = e.clock.Now()
	pg.FaultSeq++
	e.ChargeKernel(e.cfg.ScanPageNS.Mul(float64(pg.Size)).Mul(e.cfg.CostScale))
	// Injected delivery delay: under scheduling pressure the faulting
	// thread observes the poisoned PTE late. Drawn here — the injector
	// stream is serial — so materialization stays stateless.
	delay := e.inj.FaultDelay()
	sh := e.ownerShard(pg.ID)
	sh.pending = append(sh.pending, pendingProt{id: pg.ID, seq: pg.FaultSeq, delay: delay})
}

// Unprotect clears the poisoning without delivering a fault. Cancellation
// is lazy: the seq bump invalidates any pending deferred Protect or
// materialized timer, which the drain filters on pop.
func (e *Engine) Unprotect(pg *vm.Page) {
	pg.Flags &^= vm.FlagProtNone
	pg.FaultSeq++
}

// AccessedTestAndClear emulates the PTE accessed-bit read-and-clear.
//
// The simulated page aggregates CostScale real 4 KB pages; the accessed
// bit a real policy reads belongs to ONE of them, so the reference
// probability uses the per-real-page rate (aggregate / CostScale). This
// is what gives accessed-bit policies their real, coarse 0-1
// access-per-window resolution (paper Table 1) instead of an
// artificially sharpened aggregate signal.
func (e *Engine) AccessedTestAndClear(pg *vm.Page) bool {
	now := e.clock.Now()
	e.ChargeKernel(e.cfg.ABitTestNS.Mul(e.cfg.CostScale))
	dt := (now - pg.ABitTS).Seconds()
	pg.ABitTS = now
	rate := e.PageRate(pg) / e.cfg.CostScale * float64(pg.Size)
	if rate <= 0 || dt <= 0 {
		return false
	}
	var p float64
	switch e.cfg.Gap {
	case GapExp:
		p = 1 - math.Exp(-rate*dt)
	default:
		p = rate * dt
		if p > 1 {
			p = 1
		}
	}
	return e.rFault.Bool(p)
}

// migBudgetOK checks and consumes migration bandwidth tokens for a move
// of the given page count. A dry bucket fails the migration, as the
// kernel's migrate_pages path does under sustained pressure.
func (e *Engine) migBudgetOK(pages int64) bool {
	bytes := float64(pages * e.node.PageSizeBytes)
	if e.migTokens < bytes {
		return false
	}
	e.migTokens -= bytes
	return true
}

// Promote moves pg to the fast tier, running direct reclaim when the fast
// tier is short. Reports whether the page ended up in the fast tier.
func (e *Engine) Promote(pg *vm.Page) bool {
	return e.TryPromote(pg) == policy.MigrateOK
}

// Demote moves pg to the slow tier.
func (e *Engine) Demote(pg *vm.Page) bool {
	return e.TryDemote(pg) == policy.MigrateOK
}

// TryPromote implements policy.Kernel: Promote with the failure cause
// surfaced. Transient aborts (injected busy/pinned pages or watermark
// allocation failures) leave the page and all capacity/budget accounting
// untouched, so a retry observes the same state the failed attempt did.
func (e *Engine) TryPromote(pg *vm.Page) policy.MigrateResult {
	if pg.Flags.Has(vm.FlagSwapped) {
		// Promoting a reclaimed page is a swap-in to the fast tier.
		if !e.ensureFastFree(int64(pg.Size)) {
			return policy.MigrateNoCapacity
		}
		if e.allocFaultNear(mem.FastTier) {
			e.M.FailedPromotions++
			return policy.MigrateTransient
		}
		if !e.swapIn(pg, mem.FastTier) {
			return policy.MigrateNoCapacity
		}
		return policy.MigrateOK
	}
	if pg.Tier == mem.FastTier {
		return policy.MigrateOK
	}
	if !e.ensureFastFree(int64(pg.Size)) {
		return policy.MigrateNoCapacity
	}
	if e.inj.MigrationBusy() || e.allocFaultNear(mem.FastTier) {
		e.abortMigration(pg)
		e.M.FailedPromotions++
		return policy.MigrateTransient
	}
	if !e.migBudgetOK(int64(pg.Size)) {
		return policy.MigrateNoCapacity
	}
	if err := e.moveTier(pg, mem.FastTier); err != nil {
		e.M.FailedPromotions++
		return policy.MigrateTransient
	}
	return policy.MigrateOK
}

// TryDemote implements policy.Kernel; same contract as TryPromote toward
// the slow tier. A page holding a clean shadow copy demotes for free: its
// slow-tier frames are already current, so the "move" is a remap.
func (e *Engine) TryDemote(pg *vm.Page) policy.MigrateResult {
	if pg.Flags.Has(vm.FlagSwapped) {
		return policy.MigrateNoCapacity // non-resident
	}
	if pg.Tier == mem.SlowTier {
		return policy.MigrateOK
	}
	if e.shadowActive(pg.ID) {
		return e.demoteToShadow(pg)
	}
	if e.node.Free(mem.SlowTier) < int64(pg.Size) {
		// Before giving up, reclaim shadow copies: shadows are an
		// optimization, never a reservation, and must not starve real
		// demotions of slow-tier capacity.
		e.reclaimShadows(int64(pg.Size))
	}
	if e.node.Free(mem.SlowTier) < int64(pg.Size) {
		// Slow tier exhausted: would swap to disk, out of scope.
		return policy.MigrateNoCapacity
	}
	if e.inj.MigrationBusy() || e.allocFaultNear(mem.SlowTier) {
		e.abortMigration(pg)
		e.M.FailedDemotions++
		return policy.MigrateTransient
	}
	if !e.migBudgetOK(int64(pg.Size)) {
		return policy.MigrateNoCapacity
	}
	if err := e.moveTier(pg, mem.SlowTier); err != nil {
		e.M.FailedDemotions++
		return policy.MigrateTransient
	}
	return policy.MigrateOK
}

// growShadow sizes the shadow columns to the page table. Lazy: engines
// that never promote transactionally keep them empty.
func (e *Engine) growShadow() {
	if len(e.shadowed) < len(e.pages) {
		e.shadowed = append(e.shadowed, make([]bool, len(e.pages)-len(e.shadowed))...)
		e.shadowTS = append(e.shadowTS, make([]simclock.Time, len(e.pages)-len(e.shadowTS))...)
	}
}

// shadowActive reports whether the page with the given ID holds a live
// slow-tier shadow copy.
func (e *Engine) shadowActive(id int64) bool {
	return id >= 0 && id < int64(len(e.shadowed)) && e.shadowed[id]
}

// Shadowed implements policy.TransactionalKernel.
func (e *Engine) Shadowed(pg *vm.Page) bool { return e.shadowActive(pg.ID) }

// realWriteRate returns the writes/second one real 4 KB page covered by pg
// sustains — the dirtying rate the transactional machinery reasons about
// (the shadow copy of a real page goes stale on the first write to it).
func (e *Engine) realWriteRate(pg *vm.Page) float64 {
	return e.PageRate(pg) * (1 - e.pageRF[pg.ID]) / (e.cfg.CostScale * float64(pg.Size))
}

// PromoteShadowed implements policy.TransactionalKernel: TryPromote, but
// on success the page's slow-tier frames are retained as a shadow copy,
// and a write racing the copy aborts the transaction (Nomad's
// abort-on-write) instead of migrating a torn page.
func (e *Engine) PromoteShadowed(pg *vm.Page) policy.MigrateResult {
	if pg.Flags.Has(vm.FlagSwapped) {
		return e.TryPromote(pg) // swap-in: there is no slow copy to retain
	}
	if pg.Tier == mem.FastTier {
		return policy.MigrateOK
	}
	if !e.ensureFastFree(int64(pg.Size)) {
		return policy.MigrateNoCapacity
	}
	if e.inj.MigrationBusy() || e.allocFaultNear(mem.FastTier) {
		e.abortMigration(pg)
		e.M.FailedPromotions++
		return policy.MigrateTransient
	}
	// Abort-on-write: the transaction spans the page's copy window; a
	// write landing inside it dirties the source mid-copy and rolls the
	// transaction back. The dirtying rate is per real page — the batch
	// copy window is what one real page's transaction is exposed to.
	if w := e.realWriteRate(pg); w > 0 {
		window := e.node.CopyTime(int64(pg.Size)).Seconds()
		if e.rShadow.Bool(1 - math.Exp(-w*window)) {
			e.abortMigration(pg)
			e.M.NomadAborts++
			return policy.MigrateTransient
		}
	}
	if !e.migBudgetOK(int64(pg.Size)) {
		return policy.MigrateNoCapacity
	}
	if err := e.promoteShadow(pg); err != nil {
		e.M.FailedPromotions++
		return policy.MigrateTransient
	}
	return policy.MigrateOK
}

// promoteShadow performs the transactional promotion: copy to the fast
// tier with full migration accounting, but keep the slow-tier allocation
// as the page's shadow.
func (e *Engine) promoteShadow(pg *vm.Page) error {
	now := e.clock.Now()
	copyTime, err := e.node.CopyPages(mem.SlowTier, mem.FastTier, int64(pg.Size))
	if err != nil {
		if e.sanitize {
			sanitizeViolation("promoteShadow page %d (%d pages) after capacity check: %v",
				pg.ID, pg.Size, err)
		}
		e.M.MoveTierErrors++
		return err
	}
	e.ChargeKernel((e.cfg.MigrateFixedNS + e.cfg.MigratePerPageNS.Mul(float64(pg.Size))).Mul(e.cfg.CostScale) + units.NSOf(copyTime))
	e.M.ContextSwitches += 0.5
	bytes := float64(int64(pg.Size) * e.node.PageSizeBytes)
	e.M.MigratedBytes += bytes
	e.epochMigBytes += bytes
	e.M.Promotions++
	if pg.Flags.Has(vm.FlagProtNone) {
		e.Unprotect(pg)
	}
	e.kLRU[mem.SlowTier].Drop(pg.ID)
	e.kLRU[mem.FastTier].Active.PushFront(pg.ID)
	ps := e.procs[pg.Proc.Slot]
	w := e.pageW[pg.ID]
	rf := e.pageRF[pg.ID]
	ps.wRead[mem.SlowTier] -= w * rf
	ps.wWrite[mem.SlowTier] -= w * (1 - rf)
	ps.wRead[mem.FastTier] += w * rf
	ps.wWrite[mem.FastTier] += w * (1 - rf)
	ps.residentFast += int64(pg.Size)
	ps.residentSlow -= int64(pg.Size)
	pg.Tier = mem.FastTier
	e.everPromoted[pg.ID] = true
	if pg.DemoteTS > 0 {
		e.M.RePromotions++
	}
	pg.PromoteTS = now
	e.growShadow()
	e.shadowed[pg.ID] = true
	e.shadowTS[pg.ID] = now
	e.shadowFIFO = append(e.shadowFIFO, pg.ID)
	e.shadowBase += int64(pg.Size)
	if e.pol != nil {
		e.pol.OnMigrated(pg, mem.SlowTier, mem.FastTier)
	}
	return nil
}

// demoteToShadow demotes a shadowed page. Clean shadow: the slow copy is
// current, so the demotion is a zero-copy remap — no page copy, no
// migration bandwidth, no token charge. Dirty shadow (writes landed since
// the shadow was cut): the copy is stale, drop it and take the regular
// copying path.
func (e *Engine) demoteToShadow(pg *vm.Page) policy.MigrateResult {
	now := e.clock.Now()
	id := pg.ID
	if w := e.realWriteRate(pg); w > 0 {
		if age := (now - e.shadowTS[id]).Seconds(); age > 0 {
			if e.rShadow.Bool(1 - math.Exp(-w*age)) {
				e.dropShadow(pg)
				e.M.ShadowStale++
				return e.TryDemote(pg) // shadow gone: regular copying demote
			}
		}
	}
	e.ChargeKernel(e.cfg.MigrateFixedNS.Mul(e.cfg.CostScale))
	e.M.ContextSwitches += 0.5
	e.M.ShadowDemotions++
	if pg.PromoteTS > 0 && now-pg.PromoteTS <= e.cfg.ThrashWindowNS {
		// The round trip still wasted the promotion's copy, even though
		// the demotion itself was free.
		e.M.ThrashDemotions++
		e.M.ThrashBytes += float64(int64(pg.Size) * e.node.PageSizeBytes)
	}
	if pg.Flags.Has(vm.FlagProtNone) {
		e.Unprotect(pg)
	}
	e.kLRU[mem.FastTier].Drop(id)
	e.kLRU[mem.SlowTier].AddNew(id)
	ps := e.procs[pg.Proc.Slot]
	w := e.pageW[id]
	rf := e.pageRF[id]
	ps.wRead[mem.FastTier] -= w * rf
	ps.wWrite[mem.FastTier] -= w * (1 - rf)
	ps.wRead[mem.SlowTier] += w * rf
	ps.wWrite[mem.SlowTier] += w * (1 - rf)
	ps.residentFast -= int64(pg.Size)
	ps.residentSlow += int64(pg.Size)
	// Commit: the fast-tier frames retire and the shadow allocation
	// becomes the page's slow-tier residency.
	e.node.FreePages(mem.FastTier, int64(pg.Size))
	e.shadowed[id] = false
	e.shadowBase -= int64(pg.Size)
	pg.Tier = mem.SlowTier
	pg.DemoteTS = now
	e.everSlow[id] = true
	if e.pol != nil {
		e.pol.OnMigrated(pg, mem.FastTier, mem.SlowTier)
	}
	return policy.MigrateOK
}

// dropShadow releases a page's shadow frames back to the slow tier. The
// page itself is untouched; its FIFO entry goes stale in place.
func (e *Engine) dropShadow(pg *vm.Page) {
	e.node.FreePages(mem.SlowTier, int64(pg.Size))
	e.shadowed[pg.ID] = false
	e.shadowBase -= int64(pg.Size)
}

// reclaimShadows drops the oldest live shadows until the slow tier has
// room for need pages or no shadows remain.
func (e *Engine) reclaimShadows(need int64) {
	for e.node.Free(mem.SlowTier) < need && len(e.shadowFIFO) > 0 {
		id := e.shadowFIFO[0]
		e.shadowFIFO = e.shadowFIFO[1:]
		if id < 0 || id >= int64(len(e.pages)) || e.pages[id] == nil || !e.shadowActive(id) {
			continue // stale entry: shadow already consumed or dropped
		}
		e.dropShadow(e.pages[id])
		e.M.ShadowReclaims++
	}
}

// allocFaultNear asks the injector for a transient allocation failure,
// but only when the destination tier is actually near its watermarks —
// a zone with plenty of free pages does not fail allocations.
func (e *Engine) allocFaultNear(t mem.TierID) bool {
	if e.inj == nil {
		return false
	}
	wm := e.node.Watermarks(t)
	if e.node.Free(t) >= 4*wm.High {
		return false
	}
	return e.inj.AllocFail()
}

// abortMigration charges the kernel work of a NOMAD-style transactional
// abort: the unmap and rollback happen, the copy does not. No capacity,
// token, or LRU state changes — the page is exactly where it was.
func (e *Engine) abortMigration(pg *vm.Page) {
	ns := (e.cfg.MigrateFixedNS + e.cfg.MigratePerPageNS.Mul(float64(pg.Size)).Mul(0.5)).Mul(e.cfg.CostScale)
	e.ChargeKernel(ns)
	e.M.AbortedMigrationNS += float64(ns)
}

// ensureFastFree direct-reclaims (demotes inactive fast-tier pages) until
// at least n pages are free, or reports failure. Transient demotion
// aborts retry within the guard budget — direct reclaim spins past a
// busy victim the way the real reclaim loop does — while capacity
// exhaustion stops the reclaim immediately.
func (e *Engine) ensureFastFree(n int64) bool {
	if e.node.Free(mem.FastTier) >= n {
		return true
	}
	// Direct reclaim: demote from the cold end of the fast inactive list.
	guard := 4096
	for e.node.Free(mem.FastTier) < n && guard > 0 {
		guard--
		victim := e.reclaimVictim()
		if victim == nil {
			return false
		}
		switch e.TryDemote(victim) {
		case policy.MigrateOK:
		case policy.MigrateTransient:
			continue
		default:
			return false
		}
	}
	return e.node.Free(mem.FastTier) >= n
}

// reclaimVictim picks the next fast-tier reclaim candidate: the tail of
// the inactive list, falling back to aging the active list.
//
// Pressure-driven deactivation is positional (no referenced-bit test):
// under sustained reclaim the kernel rotates the active tail down faster
// than accessed bits can accumulate signal, so victims approach rotation
// order over the resident set. The periodic ageLRU pass is where the
// (minute-scale) accessed-bit information enters the lists.
func (e *Engine) reclaimVictim() *vm.Page {
	t := e.kLRU[mem.FastTier]
	id := t.Inactive.Back()
	if id < 0 {
		t.Age(nil)
		id = t.Inactive.Back()
	}
	if id < 0 {
		id = t.Active.Back()
	}
	if id < 0 {
		return nil
	}
	return e.pages[id]
}

// moveTier performs the tier transfer with full accounting. A MovePages
// failure here means the capacity check above disagreed with the node's
// actual state — a simulator accounting bug. Debug builds surface it
// through the sanitizer; release builds degrade it to a recoverable
// failed migration (the page stays put, the caller reports transient).
func (e *Engine) moveTier(pg *vm.Page, to mem.TierID) error {
	from := pg.Tier
	if e.shadowActive(pg.ID) {
		// Any copying move invalidates a retained shadow (the slow copy
		// would alias the page's new frames or go stale unobserved).
		e.dropShadow(pg)
	}
	copyTime, err := e.node.MovePages(from, to, int64(pg.Size))
	if err != nil {
		if e.sanitize {
			sanitizeViolation("moveTier page %d (%d pages, tier %d -> %d) after capacity check: %v",
				pg.ID, pg.Size, from, to, err)
		}
		e.M.MoveTierErrors++
		return err
	}
	// Kernel work: unmap, copy, remap, TLB shootdown.
	e.ChargeKernel((e.cfg.MigrateFixedNS + e.cfg.MigratePerPageNS.Mul(float64(pg.Size))).Mul(e.cfg.CostScale) + units.NSOf(copyTime))
	e.M.ContextSwitches += 0.5
	e.M.MigratedBytes += float64(int64(pg.Size) * e.node.PageSizeBytes)
	e.epochMigBytes += float64(int64(pg.Size) * e.node.PageSizeBytes)
	if to == mem.FastTier {
		e.M.Promotions++
	} else {
		e.M.Demotions++
	}

	// Cancel any pending fault: migration remaps the page.
	if pg.Flags.Has(vm.FlagProtNone) {
		e.Unprotect(pg)
	}

	// LRU: leave the old tier's lists, enter the new tier's.
	e.kLRU[from].Drop(pg.ID)
	if to == mem.FastTier {
		// A promoted page was judged hot: it enters the active list.
		e.kLRU[to].Active.PushFront(pg.ID)
	} else {
		e.kLRU[to].AddNew(pg.ID)
	}

	// Aggregates.
	ps := e.procs[pg.Proc.Slot]
	w := e.pageW[pg.ID]
	rf := e.pageRF[pg.ID]
	ps.wRead[from] -= w * rf
	ps.wWrite[from] -= w * (1 - rf)
	ps.wRead[to] += w * rf
	ps.wWrite[to] += w * (1 - rf)
	if to == mem.FastTier {
		ps.residentFast += int64(pg.Size)
		ps.residentSlow -= int64(pg.Size)
	} else {
		ps.residentFast -= int64(pg.Size)
		ps.residentSlow += int64(pg.Size)
	}
	pg.Tier = to
	now := e.clock.Now()
	if to == mem.SlowTier {
		if pg.PromoteTS > 0 && now-pg.PromoteTS <= e.cfg.ThrashWindowNS {
			// Promote→demote round trip inside one thrash window: both copies
			// were wasted bandwidth (the anti-thrashing metric of the report).
			e.M.ThrashDemotions++
			e.M.ThrashBytes += 2 * float64(int64(pg.Size)*e.node.PageSizeBytes)
		}
		pg.DemoteTS = now
		e.everSlow[pg.ID] = true
	} else {
		if pg.DemoteTS > 0 {
			e.M.RePromotions++
		}
		pg.PromoteTS = now
		e.everPromoted[pg.ID] = true
	}
	if e.pol != nil {
		e.pol.OnMigrated(pg, from, to)
	}
	return nil
}

// AccessedSlowPages counts pages that were ever resident in the slow tier
// and carry a non-zero access weight — the PPR denominator (§2.4).
func (e *Engine) AccessedSlowPages() int64 {
	var n int64
	for id, pg := range e.pages {
		if pg != nil && e.everSlow[id] && e.pageW[id] > 0 {
			n++
		}
	}
	return n
}

// EverSlow reports whether the page was ever resident in the slow tier.
func (e *Engine) EverSlow(id int64) bool { return e.everSlow[id] }

// UniquePromotedPages counts distinct pages promoted at least once — the
// PPR numerator (§2.4: pages promoted to DRAM).
func (e *Engine) UniquePromotedPages() int64 {
	var n int64
	for id, pg := range e.pages {
		if pg != nil && e.everPromoted[id] {
			n++
		}
	}
	return n
}

// SplitHuge splits a folded huge page into its base pages (same tier, no
// copying). Returns the new pages, or nil if pg is not huge.
func (e *Engine) SplitHuge(pg *vm.Page) []*vm.Page {
	if !pg.IsHuge() {
		return nil
	}
	ps := e.procs[pg.Proc.Slot]
	now := e.clock.Now()
	// Retire the huge page.
	if pg.Flags.Has(vm.FlagProtNone) {
		e.Unprotect(pg)
	}
	if e.shadowActive(pg.ID) {
		e.dropShadow(pg) // the split pages no longer alias the shadow copy
	}
	e.kLRU[pg.Tier].Drop(pg.ID)
	pg.Proc.RemovePage(pg)
	if e.pol != nil {
		e.pol.OnPageFreed(pg)
	}
	w := e.pageW[pg.ID]
	rf := e.pageRF[pg.ID]
	ps.wRead[pg.Tier] -= w * rf
	ps.wWrite[pg.Tier] -= w * (1 - rf)
	e.pages[pg.ID] = nil
	e.pageW[pg.ID] = 0

	// Split cost: 512 PTE writes + TLB shootdown.
	e.ChargeKernel(units.NS(25000 * e.cfg.CostScale))

	out := make([]*vm.Page, 0, pg.Size)
	for i := int32(0); i < pg.Size; i++ {
		vpn := pg.VPN + uint64(i)
		np := &vm.Page{
			ID:     int64(len(e.pages)),
			VPN:    vpn,
			Proc:   pg.Proc,
			Tier:   pg.Tier,
			Size:   1,
			ABitTS: now,
		}
		e.pages = append(e.pages, np)
		bw := pg.Proc.Weight(vpn)
		brf := pg.Proc.ReadFrac(vpn)
		e.pageW = append(e.pageW, bw)
		e.pageRF = append(e.pageRF, brf)
		e.everSlow = append(e.everSlow, np.Tier == mem.SlowTier)
		e.everPromoted = append(e.everPromoted, false)
		ps.wRead[np.Tier] += bw * brf
		ps.wWrite[np.Tier] += bw * (1 - brf)
		pg.Proc.InsertPage(np)
		e.links.Grow(len(e.pages))
		e.kLRU[np.Tier].AddNew(np.ID)
		if e.pol != nil {
			e.pol.OnPageMapped(np)
		}
		out = append(out, np)
	}
	// The page-ID set changed: the alias table must not be sampled again
	// before a rebuild (freed IDs would be drawn).
	e.aliasStructural = true
	return out
}

// CostScale implements policy.Kernel.
func (e *Engine) CostScale() float64 { return e.cfg.CostScale }

// HugeFactor implements policy.Kernel.
func (e *Engine) HugeFactor() int { return e.cfg.HugeFactor }

// HugeUtilization implements policy.Kernel: the fraction of covered base
// pages with non-zero access weight.
func (e *Engine) HugeUtilization(pg *vm.Page) float64 {
	if !pg.IsHuge() {
		return 1
	}
	var used int32
	for i := uint64(0); i < uint64(pg.Size); i++ {
		if pg.Proc.Weight(pg.VPN+i) > 0 {
			used++
		}
	}
	return float64(used) / float64(pg.Size)
}

// ChargeKernel accounts kernel CPU time.
func (e *Engine) ChargeKernel(ns units.NS) {
	e.M.KernelNS += float64(ns)
	e.kernelNSEpoch += float64(ns)
}

// CountContextSwitches adds context switches to the metrics.
func (e *Engine) CountContextSwitches(n int64) {
	e.M.ContextSwitches += float64(n)
}

// InactiveTail returns up to n cold-end pages of the tier's inactive list.
func (e *Engine) InactiveTail(tier mem.TierID, n int) []*vm.Page {
	ids := e.kLRU[tier].Inactive.TailN(n, nil)
	out := make([]*vm.Page, 0, len(ids))
	for _, id := range ids {
		if pg := e.pages[id]; pg != nil {
			out = append(out, pg)
		}
	}
	return out
}

// FastFree returns free fast-tier pages.
func (e *Engine) FastFree() int64 { return e.node.Free(mem.FastTier) }

// ageLRU runs the periodic active/inactive rebalance on both tiers:
// referenced inactive pages activate (so reclaim victims are genuinely
// cold even under policies that never fault), then the active tail ages
// down to restore the list balance.
func (e *Engine) ageLRU() {
	accessed := func(id int64) bool {
		pg := e.pages[id]
		if pg == nil {
			return false
		}
		return e.AccessedTestAndClear(pg)
	}
	for t := mem.TierID(0); t < mem.NumTiers; t++ {
		// The real inactive-list scan only covers a small slice of a
		// many-million-page list per aging interval; mirror that budget
		// so reclaim victims carry realistic noise.
		e.kLRU[t].ActivateReferenced(e.kLRU[t].Inactive.Len()/32, accessed)
		e.kLRU[t].Age(accessed)
	}
}

// kswapd demotes cold fast-tier pages when free memory falls below the
// high watermark, stopping at the pro watermark (§3.3.1). With the default
// pro == high this reproduces vanilla kswapd demotion; Chrono raises pro.
func (e *Engine) kswapd() {
	if !e.node.BelowHigh(mem.FastTier) {
		return
	}
	target := e.node.DemotionTarget(mem.FastTier)
	guard := 4096
	for target > 0 && guard > 0 {
		guard--
		victim := e.reclaimVictim()
		if victim == nil {
			return
		}
		switch e.TryDemote(victim) {
		case policy.MigrateOK:
		case policy.MigrateTransient:
			continue // busy victim: spin past it within the guard budget
		default:
			return
		}
		target = e.node.DemotionTarget(mem.FastTier)
	}
}

// SamplePEBS draws one sampling period's worth of PEBS samples into s,
// using the true page access-rate distribution. Implements policy.Kernel's
// hardware-sampling channel.
func (e *Engine) SamplePEBS(s *pebs.Sampler, period units.Sec) int {
	now := e.clock.Now()
	// Rebuild policy: structural staleness (pages created/freed) rebuilds
	// unconditionally — sampling a stale ID set would return freed pages.
	// Weight-only staleness tolerates a bounded lag: the O(pages) rebuild
	// is deferred until the table is PEBSAliasMinRebuildS old, so per-epoch
	// pattern drift doesn't turn every sampling period into a full rebuild.
	// An unchanged table is still refreshed every PEBSAliasRebuildS to
	// track rate shifts.
	age := units.SecondsOf(now - e.aliasBuiltAt)
	if e.aliasTable == nil || e.aliasStructural ||
		(e.aliasWeightDirty && age >= e.cfg.PEBSAliasMinRebuildS) ||
		age > e.cfg.PEBSAliasRebuildS {
		e.rebuildAlias()
	}
	if e.aliasTable == nil {
		return 0
	}
	// Injected overflow window: the DS-area buffer overflows and a
	// fraction of this period's samples is lost on top of the sampler's
	// own configured loss. The rate is restored right after the draw.
	var injLoss, oldLoss float64
	if injLoss = e.inj.PEBSLossFrac(); injLoss > 0 {
		oldLoss = s.LossRate
		s.LossRate = oldLoss + (1-oldLoss)*injLoss
	}
	before := s.Dropped()
	// Sampling micro-operations cost kernel/user time (the paper's §2.3
	// overhead point): ~300 ns per retained sample for the DS-area drain.
	n := s.SamplePeriod(e.aliasTable, e.aliasIDs, period)
	if injLoss > 0 {
		s.LossRate = oldLoss
	}
	e.M.PEBSDropped += float64(s.Dropped() - before)
	e.ChargeKernel(units.NS(float64(n) * 300 * e.cfg.CostScale))
	return n
}

// rebuildAlias reconstructs the PEBS sampling distribution from current
// page rates. The weight/ID buffers are reused across rebuilds (the
// sampler reads aliasIDs only during SamplePeriod), the per-page rate uses
// the dense proc-slot index instead of a byPID map lookup, and a live
// table is refreshed in place with Rebuild, so steady-state rebuilds
// allocate nothing.
func (e *Engine) rebuildAlias() {
	weights := e.aliasW[:0]
	ids := e.aliasIDs[:0]
	for _, pg := range e.pages {
		if pg == nil {
			continue
		}
		ps := e.procs[pg.Proc.Slot]
		if ps.wTot == 0 {
			continue
		}
		r := ps.rate * e.pageW[pg.ID] / ps.wTot
		if r <= 0 {
			continue
		}
		weights = append(weights, r)
		ids = append(ids, pg.ID)
	}
	e.aliasW = weights
	e.aliasIDs = ids
	e.aliasBuiltAt = e.clock.Now()
	e.aliasWeightDirty = false
	e.aliasStructural = false
	if len(weights) == 0 {
		e.aliasTable = nil
		return
	}
	if e.aliasTable == nil {
		e.aliasTable = rng.NewAlias(e.rPEBS, weights)
	} else {
		e.aliasTable.Rebuild(weights)
	}
}
