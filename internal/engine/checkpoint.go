package engine

// Engine checkpoint/restore: capture every piece of mutable simulation
// state into a plain serializable struct, and overlay such a capture onto
// a freshly rebuilt engine so the resumed run is bit-identical to one
// that never stopped (DESIGN.md "Checkpoint format").
//
// The snapshot instant is *between events*: Snapshot must only be called
// before Run, or from a clock AfterStep hook while a run is in flight.
// Restore expects an engine constructed exactly like the original —
// same Config, same workload Build, same policy Attached — and overlays
// dynamic state on top of that structure. Static structure (VMAs, access
// patterns, thread counts, sysctl registrations, closures) is therefore
// rebuilt by code, not serialized; anything a run mutates is serialized.
// Workload pattern drift schedules unkeyed tickers, which makes
// Clock.Snapshot fail — so a snapshot that succeeds implies the fresh
// Build's patterns still match, and sweeps fall back to replaying the
// cell from scratch otherwise (graceful degradation, never corruption).

import (
	"encoding/json"
	"fmt"
	"sort"

	"chrono/internal/faultinject"
	"chrono/internal/lru"
	"chrono/internal/mem"
	"chrono/internal/policy"
	"chrono/internal/rng"
	"chrono/internal/simclock"
	"chrono/internal/stats"
	"chrono/internal/vm"
)

// PageTableState is the dense page table in columnar form: column i of
// every slice describes the page with ID[i]. Len is the table length
// including freed (nil) slots, so restored IDs keep their positions.
type PageTableState struct {
	Len int `json:"len"`

	ID        []int64         `json:"id"`
	VPN       []uint64        `json:"vpn"`
	PID       []int           `json:"pid"`
	Tier      []int           `json:"tier"`
	Flags     []uint16        `json:"flags"`
	Size      []int32         `json:"size"`
	ProtTS    []simclock.Time `json:"prot_ts"`
	LastFault []simclock.Time `json:"last_fault"`
	DemoteTS  []simclock.Time `json:"demote_ts"`
	PromoteTS []simclock.Time `json:"promote_ts"`
	ABitTS    []simclock.Time `json:"abit_ts"`
	Meta      []uint64        `json:"meta"`
	Meta2     []uint64        `json:"meta2"`
	FaultSeq  []uint64        `json:"fault_seq"`
	// W/RF are the engine's cached page weight and read fraction. They are
	// serialized rather than recomputed because SplitHuge stores the true
	// read fraction for zero-weight fragments while PageWeight reports 1.
	W  []float64 `json:"w"`
	RF []float64 `json:"rf"`

	// EverSlow/EverPromoted are sparse ID sets (most pages are in neither).
	EverSlow     []int64 `json:"ever_slow,omitempty"`
	EverPromoted []int64 `json:"ever_promoted,omitempty"`

	// Shadowed is the sparse ID set of pages holding a slow-tier shadow
	// copy (Nomad transactional promotion); ShadowTS[i] is the shadow cut
	// time of Shadowed[i].
	Shadowed []int64         `json:"shadowed,omitempty"`
	ShadowTS []simclock.Time `json:"shadow_ts,omitempty"`
}

// ProcRecord is the dynamic engine-side state of one process.
type ProcRecord struct {
	PID int `json:"pid"`

	WRead  [mem.NumTiers]float64 `json:"w_read"`
	WWrite [mem.NumTiers]float64 `json:"w_write"`
	WTot   float64               `json:"w_tot"`
	WSwap  float64               `json:"w_swap"`

	Rate            float64 `json:"rate"`
	FaultOverheadNS float64 `json:"fault_overhead_ns"`
	EpochFaults     float64 `json:"epoch_faults"`

	ResidentFast int64 `json:"resident_fast"`
	ResidentSlow int64 `json:"resident_slow"`
	ResidentSwap int64 `json:"resident_swap"`
}

// PendingProtRecord serializes one deferred Protect: the page, the fault
// sequence the Protect stamped, and the injected delivery delay drawn at
// Protect time. Materialization is stateless, so this is all a restore
// needs to reproduce the eventual timer exactly.
type PendingProtRecord struct {
	ID      int64             `json:"id"`
	Seq     uint64            `json:"seq"`
	DelayNS simclock.Duration `json:"delay_ns"`
}

// MetricsState is the serializable form of Metrics (histograms as sparse
// bucket states).
type MetricsState struct {
	Duration simclock.Time `json:"duration"`

	Accesses     float64 `json:"accesses"`
	FastAccesses float64 `json:"fast_accesses"`
	Reads        float64 `json:"reads"`
	Writes       float64 `json:"writes"`

	Faults          float64 `json:"faults"`
	Promotions      int64   `json:"promotions"`
	Demotions       int64   `json:"demotions"`
	SwapOuts        int64   `json:"swap_outs"`
	SwapIns         int64   `json:"swap_ins"`
	MigratedBytes   float64 `json:"migrated_bytes"`
	ContextSwitches float64 `json:"context_switches"`

	KernelNS float64 `json:"kernel_ns"`
	AppNS    float64 `json:"app_ns"`

	FailedPromotions   int64   `json:"failed_promotions"`
	FailedDemotions    int64   `json:"failed_demotions"`
	AbortedMigrationNS float64 `json:"aborted_migration_ns"`
	PEBSDropped        float64 `json:"pebs_dropped"`
	MoveTierErrors     int64   `json:"move_tier_errors"`

	RePromotions    int64   `json:"re_promotions,omitempty"`
	ThrashDemotions int64   `json:"thrash_demotions,omitempty"`
	ThrashBytes     float64 `json:"thrash_bytes,omitempty"`
	ShadowDemotions int64   `json:"shadow_demotions,omitempty"`
	ShadowStale     int64   `json:"shadow_stale,omitempty"`
	ShadowReclaims  int64   `json:"shadow_reclaims,omitempty"`
	NomadAborts     int64   `json:"nomad_aborts,omitempty"`

	Lat      stats.HistogramState `json:"lat"`
	LatRead  stats.HistogramState `json:"lat_read"`
	LatWrite stats.HistogramState `json:"lat_write"`
}

// EngineState is a complete dynamic snapshot of a simulation between two
// events. It serializes deterministically: identical state always yields
// identical JSON bytes (slices in ID order, no map iteration anywhere).
type EngineState struct {
	Clock *simclock.State `json:"clock"`

	RMaster   rng.State `json:"r_master"`
	RFault    rng.State `json:"r_fault"`
	RPolicy   rng.State `json:"r_policy"`
	RWorkload rng.State `json:"r_workload"`
	RPEBS     rng.State `json:"r_pebs"`
	RShadow   rng.State `json:"r_shadow"`

	Inj *faultinject.State `json:"inj,omitempty"`

	Node  mem.NodeState  `json:"node"`
	Pages PageTableState `json:"pages"`
	Procs []ProcRecord   `json:"procs"`

	KLRU [mem.NumTiers]lru.TwoListState `json:"k_lru"`

	EpochMigBytes float64 `json:"epoch_mig_bytes"`
	KernelNSEpoch float64 `json:"kernel_ns_epoch"`
	KernelFrac    float64 `json:"kernel_frac"`
	MigTokens     float64 `json:"mig_tokens"`
	SlowUtilEMA   float64 `json:"slow_util_ema"`
	FastUtilEMA   float64 `json:"fast_util_ema"`
	SlowLatMult   float64 `json:"slow_lat_mult"`
	FastLatMult   float64 `json:"fast_lat_mult"`

	// PEBS alias cache: the exact table contents are rebuilt from AliasW
	// (construction is deterministic and draws no randomness), so only the
	// inputs and staleness flags are stored.
	AliasIDs         []int64       `json:"alias_ids,omitempty"`
	AliasW           []float64     `json:"alias_w,omitempty"`
	AliasBuiltAt     simclock.Time `json:"alias_built_at"`
	AliasWeightDirty bool          `json:"alias_weight_dirty,omitempty"`
	AliasStructural  bool          `json:"alias_structural,omitempty"`
	HasAlias         bool          `json:"has_alias,omitempty"`

	// PendingFaults are the materialized fault timers gathered from every
	// shard queue, sorted by (At, ID, Seq); PendingProts are deferred
	// Protects not yet materialized, sorted by (ID, Seq). Both are stored
	// flat — ownership is recomputed as ID mod the restoring engine's shard
	// count — so a checkpoint round-trips bit-identically across different
	// -shards settings.
	PendingFaults []simclock.ShardEntry `json:"pending_faults,omitempty"`
	PendingProts  []PendingProtRecord   `json:"pending_prots,omitempty"`

	// Shadow ledger: FIFO reclaim order (may hold stale entries, filtered
	// on pop) and total base pages held as shadow copies.
	ShadowFIFO []int64 `json:"shadow_fifo,omitempty"`
	ShadowBase int64   `json:"shadow_base,omitempty"`

	NumaTiering int64         `json:"numa_tiering"`
	Horizon     simclock.Time `json:"horizon"`

	Metrics MetricsState `json:"metrics"`

	// PolicyName guards against restoring into a different policy; Policy
	// is the attached policy's own Checkpointable state.
	PolicyName string          `json:"policy_name"`
	Policy     json.RawMessage `json:"policy,omitempty"`
}

// Snapshot captures the engine's complete dynamic state. It fails — and
// the caller must fall back to replaying from scratch — when the event
// queue holds events the checkpoint subsystem cannot rebind (unkeyed
// tickers such as workload drift or harness hooks), or when the attached
// policy does not implement policy.Checkpointable.
//
//chrono:merge gathers every shard's fault state into one canonical list
func (e *Engine) Snapshot() (*EngineState, error) {
	clk, err := e.clock.Snapshot()
	if err != nil {
		return nil, err
	}
	st := &EngineState{
		Clock:     clk,
		RMaster:   e.rMaster.State(),
		RFault:    e.rFault.State(),
		RPolicy:   e.rPolicy.State(),
		RWorkload: e.rWorkload.State(),
		RPEBS:     e.rPEBS.State(),
		RShadow:   e.rShadow.State(),
		Inj:       e.inj.State(),
		Node:      e.node.State(),

		EpochMigBytes: e.epochMigBytes,
		KernelNSEpoch: e.kernelNSEpoch,
		KernelFrac:    e.kernelFrac,
		MigTokens:     e.migTokens,
		SlowUtilEMA:   e.slowUtilEMA,
		FastUtilEMA:   e.fastUtilEMA,
		SlowLatMult:   e.slowLatMult,
		FastLatMult:   e.fastLatMult,

		AliasIDs:         append([]int64(nil), e.aliasIDs...),
		AliasW:           append([]float64(nil), e.aliasW[:len(e.aliasIDs)]...),
		AliasBuiltAt:     e.aliasBuiltAt,
		AliasWeightDirty: e.aliasWeightDirty,
		AliasStructural:  e.aliasStructural,
		HasAlias:         e.aliasTable != nil,

		ShadowFIFO: append([]int64(nil), e.shadowFIFO...),
		ShadowBase: e.shadowBase,

		NumaTiering: e.numaTiering,
		Horizon:     e.horizon,
		Metrics:     e.metricsState(),
	}
	for t := range e.kLRU {
		st.KLRU[t] = e.kLRU[t].State()
	}
	st.Pages = e.pageTableState()
	// Gather the sharded fault state into flat, canonically sorted lists:
	// identical simulation state yields identical bytes no matter how many
	// shards (or which per-queue heap layouts) produced it.
	// Stale records (the page was re-protected, unprotected, or freed since
	// they were queued) are filtered out: replay would drop them anyway, so
	// omitting them is semantics-free and keeps the bytes a pure function of
	// simulation state rather than of queue-replacement history.
	live := func(id int64, seq uint64) bool {
		if id < 0 || id >= int64(len(e.pages)) {
			return false
		}
		pg := e.pages[id]
		return pg != nil && pg.FaultSeq == seq && pg.Flags.Has(vm.FlagProtNone)
	}
	var gather []simclock.ShardEntry
	for _, sh := range e.shards {
		gather = sh.queue.AppendEntries(gather[:0])
		for _, en := range gather {
			if live(en.ID, en.Seq) {
				st.PendingFaults = append(st.PendingFaults, en)
			}
		}
		for _, pp := range sh.pending {
			if live(pp.id, pp.seq) {
				st.PendingProts = append(st.PendingProts, PendingProtRecord{ID: pp.id, Seq: pp.seq, DelayNS: pp.delay})
			}
		}
	}
	sort.Slice(st.PendingFaults, func(i, j int) bool {
		return st.PendingFaults[i].Before(st.PendingFaults[j])
	})
	sort.Slice(st.PendingProts, func(i, j int) bool {
		a, b := st.PendingProts[i], st.PendingProts[j]
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Seq < b.Seq
	})
	for _, ps := range e.procs {
		st.Procs = append(st.Procs, ProcRecord{
			PID:             ps.proc.PID,
			WRead:           ps.wRead,
			WWrite:          ps.wWrite,
			WTot:            ps.wTot,
			WSwap:           ps.wSwap,
			Rate:            ps.rate,
			FaultOverheadNS: ps.faultOverheadNS,
			EpochFaults:     ps.epochFaults,
			ResidentFast:    ps.residentFast,
			ResidentSlow:    ps.residentSlow,
			ResidentSwap:    ps.residentSwap,
		})
	}
	if e.pol != nil {
		cp, ok := e.pol.(policy.Checkpointable)
		if !ok {
			return nil, fmt.Errorf("engine: policy %s does not support checkpointing", e.pol.Name())
		}
		pst, err := cp.CheckpointState()
		if err != nil {
			return nil, fmt.Errorf("engine: snapshot policy %s: %w", e.pol.Name(), err)
		}
		raw, err := json.Marshal(pst)
		if err != nil {
			return nil, fmt.Errorf("engine: marshal policy %s state: %w", e.pol.Name(), err)
		}
		st.PolicyName = e.pol.Name()
		st.Policy = raw
	}
	return st, nil
}

func (e *Engine) pageTableState() PageTableState {
	st := PageTableState{Len: len(e.pages)}
	for id, pg := range e.pages {
		if pg == nil {
			continue
		}
		st.ID = append(st.ID, pg.ID)
		st.VPN = append(st.VPN, pg.VPN)
		st.PID = append(st.PID, pg.Proc.PID)
		st.Tier = append(st.Tier, int(pg.Tier))
		st.Flags = append(st.Flags, uint16(pg.Flags))
		st.Size = append(st.Size, pg.Size)
		st.ProtTS = append(st.ProtTS, pg.ProtTS)
		st.LastFault = append(st.LastFault, pg.LastFault)
		st.DemoteTS = append(st.DemoteTS, pg.DemoteTS)
		st.PromoteTS = append(st.PromoteTS, pg.PromoteTS)
		st.ABitTS = append(st.ABitTS, pg.ABitTS)
		st.Meta = append(st.Meta, pg.Meta)
		st.Meta2 = append(st.Meta2, pg.Meta2)
		st.FaultSeq = append(st.FaultSeq, pg.FaultSeq)
		st.W = append(st.W, e.pageW[id])
		st.RF = append(st.RF, e.pageRF[id])
		if e.everSlow[id] {
			st.EverSlow = append(st.EverSlow, pg.ID)
		}
		if e.everPromoted[id] {
			st.EverPromoted = append(st.EverPromoted, pg.ID)
		}
		if e.shadowActive(pg.ID) {
			st.Shadowed = append(st.Shadowed, pg.ID)
			st.ShadowTS = append(st.ShadowTS, e.shadowTS[pg.ID])
		}
	}
	return st
}

func (e *Engine) metricsState() MetricsState { return e.M.State() }

// State captures the metrics in serializable form — the inverse of
// MetricsState.Materialize.
func (m *Metrics) State() MetricsState {
	return MetricsState{
		Duration:           m.Duration,
		Accesses:           m.Accesses,
		FastAccesses:       m.FastAccesses,
		Reads:              m.Reads,
		Writes:             m.Writes,
		Faults:             m.Faults,
		Promotions:         m.Promotions,
		Demotions:          m.Demotions,
		SwapOuts:           m.SwapOuts,
		SwapIns:            m.SwapIns,
		MigratedBytes:      m.MigratedBytes,
		ContextSwitches:    m.ContextSwitches,
		KernelNS:           m.KernelNS,
		AppNS:              m.AppNS,
		FailedPromotions:   m.FailedPromotions,
		FailedDemotions:    m.FailedDemotions,
		AbortedMigrationNS: m.AbortedMigrationNS,
		PEBSDropped:        m.PEBSDropped,
		MoveTierErrors:     m.MoveTierErrors,
		RePromotions:       m.RePromotions,
		ThrashDemotions:    m.ThrashDemotions,
		ThrashBytes:        m.ThrashBytes,
		ShadowDemotions:    m.ShadowDemotions,
		ShadowStale:        m.ShadowStale,
		ShadowReclaims:     m.ShadowReclaims,
		NomadAborts:        m.NomadAborts,
		Lat:                m.Lat.State(),
		LatRead:            m.LatRead.State(),
		LatWrite:           m.LatWrite.State(),
	}
}

// Restore overlays a captured EngineState onto this engine, which must be
// freshly built from the same Config, with the same workload Built and the
// same policy Attached, and must not have Run yet. On success the engine
// continues with ResumeRun; on error the engine is in an undefined state
// and must be discarded (the caller replays the run from scratch).
//
//chrono:merge scatters flat checkpoint state back across every shard
func (e *Engine) Restore(st *EngineState) error {
	_, err := e.restore(st, false)
	return err
}

// RestoreSwap overlays a captured EngineState onto an engine freshly built
// from the same Config and workload but with a DIFFERENT policy attached —
// the live-reconfiguration path. The recorded policy state is discarded
// (the new policy keeps its Attach-time state, exactly as if it had just
// been handed a running system), and the clock is rebuilt with
// simclock.RestoreInto: the old policy's pending periodic work is dropped
// and the new policy's tickers are adopted on their natural phase. All
// simulation state — pages, processes, LRUs, RNG streams, metrics, pending
// faults — carries over verbatim, so the run continues without dropping.
// Returns the number of old-policy clock events dropped.
func (e *Engine) RestoreSwap(st *EngineState) (dropped int, err error) {
	return e.restore(st, true)
}

// restore is the shared body of Restore and RestoreSwap; swap selects the
// cross-policy behavior described on RestoreSwap.
//
//chrono:merge scatters flat checkpoint state back across every shard
func (e *Engine) restore(st *EngineState, swap bool) (dropped int, err error) {
	polName := ""
	if e.pol != nil {
		polName = e.pol.Name()
	}
	if !swap && polName != st.PolicyName {
		return 0, fmt.Errorf("engine: restore: checkpoint is for policy %q, engine has %q", st.PolicyName, polName)
	}
	if (e.inj == nil) != (st.Inj == nil) {
		return 0, fmt.Errorf("engine: restore: fault-injection plan mismatch (checkpoint injector: %v, engine injector: %v)",
			st.Inj != nil, e.inj != nil)
	}
	if err := e.restorePages(&st.Pages); err != nil {
		return 0, err
	}
	if err := e.restoreProcs(st.Procs); err != nil {
		return 0, err
	}
	if err := e.restorePattern(); err != nil {
		return 0, err
	}
	// Scatter the flat pending-fault state back into shard ownership. The
	// restoring engine may use a different shard count than the one that
	// snapshotted: ownership is just ID mod the current count, and replay
	// order is shard-independent.
	for _, sh := range e.shards {
		sh.queue.Reset()
		sh.pending = sh.pending[:0]
	}
	for _, en := range st.PendingFaults {
		if en.ID < 0 || en.ID >= int64(len(e.pages)) || e.pages[en.ID] == nil {
			return 0, fmt.Errorf("engine: restore: pending fault references page %d", en.ID)
		}
		e.ownerShard(en.ID).queue.Push(en)
	}
	for _, pp := range st.PendingProts {
		if pp.ID < 0 || pp.ID >= int64(len(e.pages)) || e.pages[pp.ID] == nil {
			return 0, fmt.Errorf("engine: restore: pending protect references page %d", pp.ID)
		}
		sh := e.ownerShard(pp.ID)
		sh.pending = append(sh.pending, pendingProt{id: pp.ID, seq: pp.Seq, delay: pp.DelayNS})
	}
	// The tier lists share one link family: empty every pair before any
	// refill, or pages that changed tiers since the snapshot would still
	// occupy their old slots.
	for t := range e.kLRU {
		e.kLRU[t].Clear()
	}
	for t := range e.kLRU {
		for _, ids := range [][]int64{st.KLRU[t].Active, st.KLRU[t].Inactive} {
			for _, id := range ids {
				if id < 0 || id >= int64(len(e.pages)) || e.pages[id] == nil {
					return 0, fmt.Errorf("engine: restore: LRU tier %d references page %d", t, id)
				}
			}
		}
		e.kLRU[t].SetState(st.KLRU[t])
	}
	if err := e.node.SetState(st.Node); err != nil {
		return 0, err
	}

	e.rMaster.SetState(st.RMaster)
	e.rFault.SetState(st.RFault)
	e.rPolicy.SetState(st.RPolicy)
	e.rWorkload.SetState(st.RWorkload)
	e.rPEBS.SetState(st.RPEBS)
	e.rShadow.SetState(st.RShadow)
	e.inj.SetState(st.Inj)

	e.shadowFIFO = append(e.shadowFIFO[:0], st.ShadowFIFO...)
	e.shadowBase = st.ShadowBase

	e.epochMigBytes = st.EpochMigBytes
	e.kernelNSEpoch = st.KernelNSEpoch
	e.kernelFrac = st.KernelFrac
	e.migTokens = st.MigTokens
	e.slowUtilEMA = st.SlowUtilEMA
	e.fastUtilEMA = st.FastUtilEMA
	e.slowLatMult = st.SlowLatMult
	e.fastLatMult = st.FastLatMult

	e.aliasIDs = append(e.aliasIDs[:0], st.AliasIDs...)
	e.aliasW = append(e.aliasW[:0], st.AliasW...)
	e.aliasBuiltAt = st.AliasBuiltAt
	e.aliasWeightDirty = st.AliasWeightDirty
	e.aliasStructural = st.AliasStructural
	e.aliasTable = nil
	if st.HasAlias && len(st.AliasW) > 0 {
		e.aliasTable = rng.NewAlias(e.rPEBS, e.aliasW)
	}

	e.numaTiering = st.NumaTiering
	e.horizon = st.Horizon

	if err := e.restoreMetrics(&st.Metrics); err != nil {
		return 0, err
	}

	// On a swap the recorded policy state belongs to the old policy and is
	// discarded: the new policy keeps the state its Attach just built, as
	// if it had been handed a running system.
	if !swap && e.pol != nil {
		if err := e.pol.(policy.Checkpointable).RestoreCheckpoint(st.Policy); err != nil {
			return 0, fmt.Errorf("engine: restore policy %s: %w", st.PolicyName, err)
		}
	}

	// Arm the engine tickers exactly like Run does, then let the clock
	// restore drain the fresh arming and rebuild the recorded queue. This
	// must come last: every keyed ticker and binder has to be registered
	// before the recorded events can resolve.
	e.startTickers()
	if swap {
		dropped, err = e.clock.RestoreInto(st.Clock)
		if err != nil {
			return dropped, fmt.Errorf("engine: restore clock: %w", err)
		}
		return dropped, nil
	}
	if err := e.clock.Restore(st.Clock); err != nil {
		return 0, fmt.Errorf("engine: restore clock: %w", err)
	}
	return 0, nil
}

// restorePages reconciles the fresh page table against the snapshot.
// Structure can differ only by huge-page splits: fresh pages missing from
// the snapshot were freed (split) during the original run and retire;
// snapshot IDs beyond the fresh table are the split fragments and are
// created bare (their LRU position, policy counters, and residency are
// overlaid wholesale by the rest of Restore, so none of mapPage's side
// effects apply).
func (e *Engine) restorePages(st *PageTableState) error {
	n := len(st.ID)
	for _, col := range []int{
		len(st.VPN), len(st.PID), len(st.Tier), len(st.Flags), len(st.Size),
		len(st.ProtTS), len(st.LastFault), len(st.DemoteTS), len(st.PromoteTS),
		len(st.ABitTS),
		len(st.Meta), len(st.Meta2), len(st.FaultSeq), len(st.W), len(st.RF),
	} {
		if col != n {
			return fmt.Errorf("engine: restore: page table column length mismatch")
		}
	}
	if st.Len < len(e.pages) {
		return fmt.Errorf("engine: restore: checkpoint page table (%d slots) smaller than fresh build (%d)",
			st.Len, len(e.pages))
	}
	present := make([]bool, st.Len)
	for _, id := range st.ID {
		if id < 0 || id >= int64(st.Len) {
			return fmt.Errorf("engine: restore: page ID %d outside table of %d", id, st.Len)
		}
		if present[id] {
			return fmt.Errorf("engine: restore: duplicate page ID %d", id)
		}
		present[id] = true
	}
	// Retire fresh pages the snapshot freed (mirrors SplitHuge's retire).
	for id := range e.pages {
		if e.pages[id] != nil && !present[id] {
			pg := e.pages[id]
			pg.Proc.RemovePage(pg)
			e.pages[id] = nil
			e.pageW[id] = 0
		}
	}
	for len(e.pages) < st.Len {
		e.pages = append(e.pages, nil)
		e.pageW = append(e.pageW, 0)
		e.pageRF = append(e.pageRF, 1)
		e.everSlow = append(e.everSlow, false)
		e.everPromoted = append(e.everPromoted, false)
	}
	e.links.Grow(len(e.pages))
	for i, id := range st.ID {
		pg := e.pages[id]
		ps := e.byPID[st.PID[i]]
		if ps == nil {
			return fmt.Errorf("engine: restore: page %d references unknown PID %d", id, st.PID[i])
		}
		if st.Tier[i] < 0 || st.Tier[i] >= int(mem.NumTiers) {
			return fmt.Errorf("engine: restore: page %d has tier %d", id, st.Tier[i])
		}
		if pg == nil {
			pg = &vm.Page{ID: id, VPN: st.VPN[i], Proc: ps.proc, Size: st.Size[i]}
			e.pages[id] = pg
			ps.proc.InsertPage(pg)
		} else if pg.VPN != st.VPN[i] || pg.Proc.PID != st.PID[i] {
			return fmt.Errorf("engine: restore: page %d is (pid %d, vpn %#x) in checkpoint but (pid %d, vpn %#x) in fresh build",
				id, st.PID[i], st.VPN[i], pg.Proc.PID, pg.VPN)
		}
		pg.Tier = mem.TierID(st.Tier[i])
		pg.Flags = vm.PageFlags(st.Flags[i])
		pg.Size = st.Size[i]
		pg.ProtTS = st.ProtTS[i]
		pg.LastFault = st.LastFault[i]
		pg.DemoteTS = st.DemoteTS[i]
		pg.PromoteTS = st.PromoteTS[i]
		pg.ABitTS = st.ABitTS[i]
		pg.Meta = st.Meta[i]
		pg.Meta2 = st.Meta2[i]
		pg.FaultSeq = st.FaultSeq[i]
		e.pageW[id] = st.W[i]
		e.pageRF[id] = st.RF[i]
	}
	for i := range e.everSlow {
		e.everSlow[i] = false
		e.everPromoted[i] = false
	}
	for _, id := range st.EverSlow {
		if id < 0 || id >= int64(len(e.everSlow)) {
			return fmt.Errorf("engine: restore: ever-slow ID %d out of range", id)
		}
		e.everSlow[id] = true
	}
	for _, id := range st.EverPromoted {
		if id < 0 || id >= int64(len(e.everPromoted)) {
			return fmt.Errorf("engine: restore: ever-promoted ID %d out of range", id)
		}
		e.everPromoted[id] = true
	}
	if len(st.Shadowed) != len(st.ShadowTS) {
		return fmt.Errorf("engine: restore: shadowed/shadow_ts column length mismatch")
	}
	for i := range e.shadowed {
		e.shadowed[i] = false
		e.shadowTS[i] = 0
	}
	if len(st.Shadowed) > 0 {
		e.growShadow()
		for i, id := range st.Shadowed {
			if id < 0 || id >= int64(len(e.pages)) || e.pages[id] == nil {
				return fmt.Errorf("engine: restore: shadowed ID %d references no live page", id)
			}
			e.shadowed[id] = true
			e.shadowTS[id] = st.ShadowTS[i]
		}
	}
	return nil
}

// restorePattern writes the restored per-page weights back into the
// pattern arrays of processes whose workload registered for pattern
// restore (EnablePatternRestore: dynamic scenarios whose pattern is a
// pure function of the clock). A fresh Build leaves the pattern at its
// t=0 phase; the overlaid pageW/pageRF columns carry the snapshot-time
// phase, so writing them back makes the resumed workload's next tick see
// exactly the state the live run had. Only base pages are supported —
// huge-page workloads must not register.
func (e *Engine) restorePattern() error {
	for _, p := range e.patternRestore {
		n := p.PatternLen()
		for i := 0; i < n; i++ {
			pg := p.PageAtIndex(i)
			if pg == nil {
				continue
			}
			if pg.Size != 1 {
				return fmt.Errorf("engine: restore: pattern restore on huge page (pid %d, vpn %#x)", p.PID, pg.VPN)
			}
			if e.pageW[pg.ID] <= 0 {
				// A zero engine weight is indistinguishable from "never
				// set" (PageWeight reports weight 0, readFrac 1); scenarios
				// registering for restore keep every weight positive.
				return fmt.Errorf("engine: restore: pattern restore with zero weight (pid %d, vpn %#x)", p.PID, pg.VPN)
			}
			p.SetPattern(pg.VPN, e.pageW[pg.ID], e.pageRF[pg.ID])
		}
		p.ClearDirty()
		p.RecomputeTotalWeight()
	}
	return nil
}

func (e *Engine) restoreProcs(recs []ProcRecord) error {
	if len(recs) != len(e.procs) {
		return fmt.Errorf("engine: restore: checkpoint has %d processes, engine has %d", len(recs), len(e.procs))
	}
	for _, rec := range recs {
		ps := e.byPID[rec.PID]
		if ps == nil {
			return fmt.Errorf("engine: restore: unknown PID %d", rec.PID)
		}
		ps.wRead = rec.WRead
		ps.wWrite = rec.WWrite
		ps.wTot = rec.WTot
		ps.wSwap = rec.WSwap
		ps.rate = rec.Rate
		ps.faultOverheadNS = rec.FaultOverheadNS
		ps.epochFaults = rec.EpochFaults
		ps.residentFast = rec.ResidentFast
		ps.residentSlow = rec.ResidentSlow
		ps.residentSwap = rec.ResidentSwap
	}
	return nil
}

func (e *Engine) restoreMetrics(st *MetricsState) error {
	return applyMetricsState(&e.M, st)
}

// Materialize reconstructs a standalone Metrics from its serialized form.
// Resumable sweeps use it to short-circuit cells whose finished metrics
// are already on disk without re-running the simulation.
func (st *MetricsState) Materialize() (*Metrics, error) {
	m := &Metrics{
		Lat:      stats.NewHistogram(),
		LatRead:  stats.NewHistogram(),
		LatWrite: stats.NewHistogram(),
	}
	if err := applyMetricsState(m, st); err != nil {
		return nil, err
	}
	return m, nil
}

func applyMetricsState(m *Metrics, st *MetricsState) error {
	m.Duration = st.Duration
	m.Accesses = st.Accesses
	m.FastAccesses = st.FastAccesses
	m.Reads = st.Reads
	m.Writes = st.Writes
	m.Faults = st.Faults
	m.Promotions = st.Promotions
	m.Demotions = st.Demotions
	m.SwapOuts = st.SwapOuts
	m.SwapIns = st.SwapIns
	m.MigratedBytes = st.MigratedBytes
	m.ContextSwitches = st.ContextSwitches
	m.KernelNS = st.KernelNS
	m.AppNS = st.AppNS
	m.FailedPromotions = st.FailedPromotions
	m.FailedDemotions = st.FailedDemotions
	m.AbortedMigrationNS = st.AbortedMigrationNS
	m.PEBSDropped = st.PEBSDropped
	m.MoveTierErrors = st.MoveTierErrors
	m.RePromotions = st.RePromotions
	m.ThrashDemotions = st.ThrashDemotions
	m.ThrashBytes = st.ThrashBytes
	m.ShadowDemotions = st.ShadowDemotions
	m.ShadowStale = st.ShadowStale
	m.ShadowReclaims = st.ShadowReclaims
	m.NomadAborts = st.NomadAborts
	if err := m.Lat.SetState(st.Lat); err != nil {
		return err
	}
	if err := m.LatRead.SetState(st.LatRead); err != nil {
		return err
	}
	return m.LatWrite.SetState(st.LatWrite)
}
