//go:build simdebug

package engine

// sanitizeDefault force-enables the invariant sanitizer in every engine
// when the binary is built with -tags simdebug (Config.DebugChecks still
// enables it per-engine in regular builds).
const sanitizeDefault = true
