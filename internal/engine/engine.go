// Package engine is the discrete-event tiered-memory simulator that stands
// in for the paper's Linux kernel + DRAM/Optane testbed (see DESIGN.md §1
// for the substitution argument).
//
// # Access model
//
// The workload assigns every base page an access weight and a read
// fraction. Each process runs a closed loop: every access costs app CPU
// work, the configured pmbench-style delay, and the memory latency of the
// page's current tier; the process's aggregate access rate therefore
// *increases* as its hot pages move to the fast tier, reproducing the
// feedback that turns good placement into throughput. Per-page access
// rates are the process rate split proportionally to page weights.
//
// Page accesses are not simulated individually. Instead:
//
//   - Hint faults: when a policy poisons a page (PROT_NONE), the time to
//     the page's next access is drawn from the configured gap model —
//     Uniform(0, 1/rate) for the periodic-access model the paper's
//     Appendix B analyses, or Exp(rate) for Poisson traffic — and a fault
//     event is scheduled. The captured idle time observed by Chrono is
//     exactly this gap.
//   - Accessed bits: a test-and-clear is answered with a Bernoulli draw of
//     the probability that at least one access arrived since the last
//     clear.
//   - PEBS: samples are drawn from the true page-rate distribution under a
//     capped budget (internal/pebs).
//   - Latency/throughput: per epoch, the per-tier access masses accumulate
//     into latency histograms, including fault and migration penalties.
//
// All randomness flows from one seed; a run is exactly reproducible.
package engine

import (
	"fmt"
	"runtime"

	"chrono/internal/faultinject"
	"chrono/internal/lru"
	"chrono/internal/mem"
	"chrono/internal/policy"
	"chrono/internal/rng"
	"chrono/internal/simclock"
	"chrono/internal/stats"
	"chrono/internal/sysctl"
	"chrono/internal/units"
	"chrono/internal/vm"
)

// GapModel selects the inter-access time model used for fault timing.
type GapModel int

const (
	// GapUniform models periodic accesses with random phase: the gap from
	// an independent scan instant to the next access is U(0, period).
	// This is the model of the paper's Appendix B.
	GapUniform GapModel = iota
	// GapExp models Poisson accesses: the gap is Exp(rate).
	GapExp
)

// Config parameterizes a simulation run.
type Config struct {
	// Seed drives all randomness. Same seed, same results.
	Seed uint64

	// PagesPerGB scales physical sizes down: a simulated "GB" is this
	// many base pages. All capacity *ratios* are preserved. Default 256.
	PagesPerGB int64
	// FastGB and SlowGB size the tiers (defaults 64 and 192, the paper's
	// testbed: 4×16 GB DRAM + 2×128 GB Optane at ~25% fast ratio).
	FastGB units.GB
	SlowGB units.GB

	// EpochNS is the metric accounting step. Default 250 ms.
	EpochNS simclock.Duration
	// ThrashWindowNS is the promote→demote round-trip window counted as
	// thrash by the wasted-bandwidth metrics (ThrashDemotions/ThrashBytes).
	// Default 60 s — one scan period, the natural reaction timescale of the
	// fault-based policies.
	ThrashWindowNS simclock.Duration
	// NCPU bounds compute (Xeon Gold 6348: 28 cores, 56 threads).
	NCPU int

	Gap     GapModel
	Latency mem.LatencyModel

	// Cost model (virtual nanoseconds).
	CPUWorkNS           units.NS // per-access app work outside memory
	FaultKernelNS       units.NS // kernel time per hint fault
	FaultLatencyNS      units.NS // extra latency seen by a faulting access
	ScanPageNS          units.NS // kernel time per page scanned/poisoned
	MigrateFixedNS      units.NS // kernel time per migration operation
	MigratePerPageNS    units.NS // kernel time per base page migrated
	ABitTestNS          units.NS // kernel time per accessed-bit test
	ContextSwitchIdleHz units.Hz // baseline context-switch rate per proc

	// PEBSAliasRebuildS is the virtual seconds between alias-table
	// rebuilds for PEBS sampling. Default 10.
	PEBSAliasRebuildS units.Sec
	// PEBSAliasMinRebuildS rate-limits weight-triggered alias rebuilds: a
	// pattern change marks the table stale, but the O(pages) rebuild is
	// deferred until the table is at least this old (virtual seconds).
	// Structural changes (pages created or freed) always rebuild before
	// the next sample. Default 1.
	PEBSAliasMinRebuildS units.Sec

	// HugeFactor is the number of simulated base pages folded into one
	// "huge page" under HugePages mapping. Real x86 folds 512×4 KB into
	// 2 MB; since one simulated page already stands for CostScale real
	// pages, the simulator uses a smaller factor (default 64) that
	// preserves the *relative* coarsening and the hotness-fragmentation
	// behaviour the paper analyses (§2.3, §3.4). Chrono's huge-page
	// threshold/bucket scaling uses the actual fold factor.
	HugeFactor int

	// MigrationBWBytes caps the sustainable page-migration throughput in
	// bytes/second of real traffic (the kernel migrate_pages path:
	// unmap + copy + TLB shootdown, contending with demand traffic on
	// the slow media). Migrations beyond the budget fail and must be
	// retried — exactly how synchronous NUMA-fault promotion behaves
	// under pressure. Default 1.2 GB/s.
	MigrationBWBytes units.BytesPerSec

	// DebugChecks enables the invariant sanitizer (see sanitize.go): the
	// engine validates page-table/LRU/watermark/migration consistency
	// after every metric epoch and at the end of Run, panicking on the
	// first violation. Building with -tags simdebug forces this on for
	// every engine regardless of the flag.
	DebugChecks bool

	// Faults configures deterministic fault injection (see
	// internal/faultinject): transient migration aborts, allocation
	// failures near watermarks, PEBS overflow windows, delayed hint
	// faults. The zero value disables the subsystem entirely — no
	// injector is built, no extra RNG draws happen, and runs are
	// byte-identical to an engine without it.
	Faults faultinject.Plan

	// CostScale is the real-pages-per-simulated-page factor. One
	// simulated page stands for CostScale real 4 KB pages (the capacity
	// scale-down), so per-page kernel costs, migration bytes, and fault
	// latency observations are multiplied by it to keep kernel-time
	// fractions and bandwidth figures in real units. Default
	// 262144/PagesPerGB.
	CostScale float64

	// Shards partitions the fault machinery by page ID (owner = ID mod
	// Shards) for multi-core execution at high page fidelity. Results are
	// independent of the shard count: gap draws are stateless hashes and
	// replay is a canonical (time, page, seq)-ordered merge (see shard.go).
	// Default 1.
	Shards int
	// ShardWorkers caps the goroutines used for shard materialization.
	// 0 means min(Shards, GOMAXPROCS); 1 forces inline execution. Like
	// Shards, the setting never affects results, only wall-clock.
	ShardWorkers int
}

// Defaults fills zero fields with defaults and returns cfg.
func (cfg Config) withDefaults() Config {
	if cfg.PagesPerGB == 0 {
		cfg.PagesPerGB = 256
	}
	if cfg.FastGB == 0 {
		cfg.FastGB = 64
	}
	if cfg.SlowGB == 0 {
		cfg.SlowGB = 192
	}
	if cfg.EpochNS == 0 {
		cfg.EpochNS = 250 * simclock.Millisecond
	}
	if cfg.ThrashWindowNS == 0 {
		cfg.ThrashWindowNS = 60 * simclock.Second
	}
	if cfg.NCPU == 0 {
		cfg.NCPU = 56
	}
	if cfg.Latency == (mem.LatencyModel{}) {
		cfg.Latency = mem.DefaultLatency()
	}
	if cfg.CPUWorkNS == 0 {
		cfg.CPUWorkNS = 130
	}
	if cfg.FaultKernelNS == 0 {
		cfg.FaultKernelNS = 1900
	}
	if cfg.FaultLatencyNS == 0 {
		cfg.FaultLatencyNS = 3600
	}
	if cfg.ScanPageNS == 0 {
		cfg.ScanPageNS = 130
	}
	if cfg.MigrateFixedNS == 0 {
		cfg.MigrateFixedNS = 1500
	}
	if cfg.MigratePerPageNS == 0 {
		cfg.MigratePerPageNS = 350
	}
	if cfg.ABitTestNS == 0 {
		cfg.ABitTestNS = 25
	}
	if cfg.ContextSwitchIdleHz == 0 {
		cfg.ContextSwitchIdleHz = 1.2
	}
	if cfg.PEBSAliasRebuildS == 0 {
		cfg.PEBSAliasRebuildS = 10
	}
	if cfg.PEBSAliasMinRebuildS == 0 {
		cfg.PEBSAliasMinRebuildS = 1
	}
	if cfg.CostScale == 0 {
		cfg.CostScale = 262144 / float64(cfg.PagesPerGB)
	}
	if cfg.MigrationBWBytes == 0 {
		cfg.MigrationBWBytes = 1.2e9
	}
	if cfg.HugeFactor == 0 {
		cfg.HugeFactor = 64
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	return cfg
}

// procState is the engine-side view of one process.
type procState struct {
	proc    *vm.Process
	threads int

	// Aggregate access masses by tier and op, maintained incrementally:
	// wRead[t] = Σ w_i·rf_i over pages in tier t, wWrite analogous.
	wRead  [mem.NumTiers]float64
	wWrite [mem.NumTiers]float64
	wTot   float64

	// rate is accesses/second this epoch.
	rate float64
	// faultOverheadNS is the EMA of per-access fault-handling overhead.
	faultOverheadNS float64
	// epochFaults counts hint faults taken this epoch.
	epochFaults float64

	// residentFast/Slow count resident base pages per tier;
	// residentSwap counts pages reclaimed to backing storage.
	residentFast int64
	residentSlow int64
	residentSwap int64

	// wSwap is the access-weight mass of swapped pages (served at
	// SwapLatencyNS in the closed-loop model).
	wSwap float64
}

// Rate returns the process's current access rate (accesses/second).
func (ps *procState) Rate() float64 { return ps.rate }

// Engine is one simulation instance.
//
// The //chrono:state and //chrono:rebuilt directives below are the
// checkpoint-coverage fence (enforced by the statesync linter): every
// field is either mapped to the EngineState field(s) that serialize it or
// justified as rebuilt by a fresh New+Build+Attach, and every EngineState
// field must be backed by some mapping.
//
//chrono:statesync EngineState
type Engine struct {
	cfg   Config          //chrono:rebuilt construction-time configuration; immutable after New
	clock *simclock.Clock //chrono:state Clock
	node  *mem.Node       //chrono:state Node
	table *sysctl.Table   //chrono:rebuilt sysctl registrations are code-defined; writable values live in numaTiering and the policy state

	rMaster   *rng.Source //chrono:state RMaster
	rFault    *rng.Source //chrono:state RFault
	rPolicy   *rng.Source //chrono:state RPolicy
	rWorkload *rng.Source //chrono:state RWorkload
	rPEBS     *rng.Source //chrono:state RPEBS

	//chrono:state Pages
	pages []*vm.Page // dense by ID; nil after free
	//chrono:state Pages
	pageW []float64 // the W column: cached page weight (sum over covered base pages)
	//chrono:state Pages
	pageRF []float64 // the RF column: cached weighted read fraction
	//chrono:state Pages
	everSlow []bool // sparse EverSlow set: page was ever resident in the slow tier
	//chrono:state Pages
	everPromoted []bool             // sparse EverPromoted set: page was promoted at least once
	procs        []*procState       //chrono:state Procs
	byPID        map[int]*procState //chrono:rebuilt index over procs, rebuilt by AddProcess during Build

	// Nomad-style transactional shadow state (kernel.go): a shadowed page
	// is fast-tier resident while its old slow-tier frames are retained as
	// a clean copy, making a later clean demotion a zero-copy remap. The
	// arrays grow lazily (growShadow) — engines that never promote
	// transactionally keep them empty.
	//
	//chrono:state Pages
	shadowed []bool // sparse Shadowed column: page holds a slow-tier shadow copy
	//chrono:state Pages
	shadowTS []simclock.Time // shadow cut time, parallel to shadowed
	// shadowFIFO orders live shadows by creation for capacity reclaim
	// (oldest dropped first); consumed/dropped entries go stale in place
	// and are skipped on pop.
	shadowFIFO []int64 //chrono:state ShadowFIFO
	// shadowBase counts slow-tier base pages held by live shadows.
	shadowBase int64 //chrono:state ShadowBase
	// rShadow draws abort-on-write and shadow-dirtiness decisions. Seeded
	// by hash, not forked from rMaster, so its existence perturbs no other
	// stream; it advances only when transactional migration is used.
	rShadow *rng.Source //chrono:state RShadow

	// patternRestore lists processes whose workload opted into checkpoint
	// pattern write-back (EnablePatternRestore): Restore copies the
	// snapshot's per-page weight/read-fraction back into the process
	// pattern arrays so dynamic (phase-changing) workloads resume
	// bit-identically.
	patternRestore []*vm.Process //chrono:rebuilt opt-in registrations, re-made by the workload's Build

	pol policy.Policy //chrono:state PolicyName,Policy

	// Kernel LRU (active/inactive per tier) maintained on faults and by
	// periodic aging; source of reclaim/demotion candidates.
	links *lru.Links                 //chrono:rebuilt LRU link storage; regrown by restorePages and refilled by KLRU SetState
	kLRU  [mem.NumTiers]*lru.TwoList //chrono:state KLRU

	// epoch accumulators
	epochMigBytes float64 //chrono:state EpochMigBytes
	kernelNSEpoch float64 //chrono:state KernelNSEpoch
	kernelFrac    float64 //chrono:state KernelFrac
	// migTokens is the migration token bucket (bytes), refilled per epoch
	// at MigrationBWBytes; migrations fail when it runs dry.
	migTokens float64 //chrono:state MigTokens
	// Bandwidth-driven latency inflation (see metrics.go).
	slowUtilEMA float64 //chrono:state SlowUtilEMA
	fastUtilEMA float64 //chrono:state FastUtilEMA
	slowLatMult float64 //chrono:state SlowLatMult
	fastLatMult float64 //chrono:state FastLatMult

	// PEBS alias cache. Weight-staleness (pattern drift) tolerates a
	// rate-limited rebuild; structural staleness (pages created or freed)
	// must rebuild before the next sample or freed IDs would be drawn.
	//
	//chrono:state HasAlias
	aliasTable *rng.Alias // contents rebuilt from AliasW on restore
	aliasIDs   []int64    //chrono:state AliasIDs
	//chrono:state AliasW
	aliasW           []float64     // scratch reused across rebuilds
	aliasBuiltAt     simclock.Time //chrono:state AliasBuiltAt
	aliasWeightDirty bool          //chrono:state AliasWeightDirty
	aliasStructural  bool          //chrono:state AliasStructural

	// shards own the pending-fault timers and deferred Protects, keyed by
	// page ID mod shard count (see shard.go for the determinism argument).
	//
	//chrono:state PendingFaults,PendingProts
	shards []*engineShard
	// faultSeed keys the stateless per-(page, seq) fault-gap hash. Derived
	// from Config.Seed only — never from the shard count — so every shard
	// layout draws identical gaps.
	faultSeed uint64 //chrono:rebuilt derived from Config.Seed by New
	// shardWorkers is the resolved materialization parallelism; execution
	// strategy never affects results.
	shardWorkers int //chrono:rebuilt derived from Config and GOMAXPROCS; wall-clock only

	// flushMark/flushList are scratch for FlushPattern's page dedup and
	// recomputeProcAggregates' VMA walk, reused across calls (indexed by
	// page ID).
	flushMark []bool  //chrono:rebuilt scratch buffer, dead between events
	flushList []int64 //chrono:rebuilt scratch buffer, dead between events

	// numaTiering mirrors the sysctl toggle; policies may consult it.
	numaTiering int64 //chrono:state NumaTiering

	// sanitize enables the per-epoch invariant checks (sanitize.go).
	sanitize bool //chrono:rebuilt derived from Config and build tags

	// inj draws fault-injection decisions; nil (the common case) means
	// no injection and is handled by faultinject's nil-safe methods.
	inj *faultinject.Injector //chrono:state Inj

	// runTickers holds the engine's own periodic work (epoch accounting,
	// LRU aging, kswapd, cgroup reclaim) while a run is in flight, so
	// finishRun can cancel it and a Restore can find it registered.
	runTickers []*simclock.Ticker //chrono:rebuilt re-armed by startTickers inside Restore
	// engTickers caches the ticker objects across Run calls: keyed tickers
	// keep their registry slot through Cancel/Restart, so repeated runs
	// re-arm the same four tickers instead of allocating fresh ones.
	engTickers []*simclock.Ticker //chrono:rebuilt ticker cache, re-armed by startTickers

	horizon simclock.Time //chrono:state Horizon

	M Metrics //chrono:state Metrics

	// EpochHook, if set, runs at the end of every metric epoch (used by
	// the harness to sample time series such as Figure 9's placement
	// history).
	EpochHook func(now simclock.Time) //chrono:rebuilt harness closure; the harness reattaches it before ResumeRun
}

// Metrics aggregates a run's results.
type Metrics struct {
	Duration simclock.Time

	Accesses     float64
	FastAccesses float64
	Reads        float64
	Writes       float64

	Faults          float64
	Promotions      int64
	Demotions       int64
	SwapOuts        int64
	SwapIns         int64
	MigratedBytes   float64
	ContextSwitches float64

	KernelNS float64
	AppNS    float64

	// Robustness accounting: migration attempts aborted by transient
	// faults (busy/pinned page, watermark allocation failure), the
	// kernel time those aborts burned, PEBS samples lost to overflow
	// windows, and moveTier accounting errors recovered in release
	// builds (always 0 in a healthy simulator).
	FailedPromotions   int64
	FailedDemotions    int64
	AbortedMigrationNS float64
	PEBSDropped        float64
	MoveTierErrors     int64

	// Thrash accounting (every policy): promotions of pages that had been
	// demoted before, demotions landing within one epoch of the page's
	// promotion, and the migration bytes wasted on those round trips.
	RePromotions    int64
	ThrashDemotions int64
	ThrashBytes     float64

	// Transactional-migration accounting (Nomad-style shadow copies):
	// zero-copy demotions into a clean shadow, shadows invalidated by
	// writes at demote time, shadows dropped for slow-tier capacity, and
	// promotions aborted by a write racing the copy.
	ShadowDemotions int64
	ShadowStale     int64
	ShadowReclaims  int64
	NomadAborts     int64

	// Latency observations, weighted by access counts.
	Lat      *stats.Histogram
	LatRead  *stats.Histogram
	LatWrite *stats.Histogram
}

// Throughput returns million accesses per second of virtual time.
func (m *Metrics) Throughput() float64 {
	if m.Duration == 0 {
		return 0
	}
	return m.Accesses / m.Duration.Seconds() / 1e6
}

// FMAR is the fast-tier memory access ratio (§5.1.2).
func (m *Metrics) FMAR() float64 {
	if m.Accesses == 0 {
		return 0
	}
	r := m.FastAccesses / m.Accesses
	if r > 1 { // float accumulation error when everything is fast
		r = 1
	}
	return r
}

// KernelTimeFrac is kernel CPU time as a share of total CPU time.
func (m *Metrics) KernelTimeFrac() float64 {
	tot := m.KernelNS + m.AppNS
	if tot == 0 {
		return 0
	}
	return m.KernelNS / tot
}

// ContextSwitchRate is context switches per second per process-equivalent
// (reported system-wide per second in Figure 8).
func (m *Metrics) ContextSwitchRate() float64 {
	if m.Duration == 0 {
		return 0
	}
	return m.ContextSwitches / m.Duration.Seconds()
}

// New creates an engine.
//
//chrono:merge construction fan-out: wires every shard before any worker exists
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	fastPages := cfg.FastGB.Pages(cfg.PagesPerGB)
	slowPages := cfg.SlowGB.Pages(cfg.PagesPerGB)
	r := rng.New(cfg.Seed)
	e := &Engine{
		cfg:   cfg,
		clock: simclock.New(),
		node: mem.NewNode(mem.Config{
			FastPages:     fastPages,
			SlowPages:     slowPages,
			Latency:       cfg.Latency,
			PageSizeBytes: int64(4096 * cfg.CostScale),
		}),
		table:       sysctl.NewTable(),
		rMaster:     r,
		rFault:      r.Fork(1),
		rPolicy:     r.Fork(2),
		rWorkload:   r.Fork(3),
		rPEBS:       r.Fork(4),
		byPID:       make(map[int]*procState),
		links:       lru.NewLinks(0),
		numaTiering: 1,
		sanitize:    cfg.DebugChecks || sanitizeDefault,
		slowLatMult: 1,
		fastLatMult: 1,
		M: Metrics{
			Lat:      stats.NewHistogram(),
			LatRead:  stats.NewHistogram(),
			LatWrite: stats.NewHistogram(),
		},
	}
	for t := mem.TierID(0); t < mem.NumTiers; t++ {
		e.kLRU[t] = lru.NewTwoList(e.links)
	}
	// Sharded fault machinery (shard.go). The gap-hash seed folds in a
	// domain constant so it never collides with another derived stream; it
	// deliberately ignores Shards/ShardWorkers, which must not affect
	// results.
	e.faultSeed = rng.Hash(cfg.Seed, 0x66a0, 1)
	// The shadow stream is hash-seeded (not forked): deriving it consumes
	// no rMaster draws, so engines predating transactional migration
	// reproduce bit-identically.
	e.rShadow = rng.New(rng.Hash(cfg.Seed, 0x5ad0, 2))
	e.shards = make([]*engineShard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = &engineShard{}
		e.shards[i].queue.SetStride(int64(cfg.Shards))
	}
	w := cfg.ShardWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cfg.Shards {
		w = cfg.Shards
	}
	e.shardWorkers = w
	policy.RegisterBackoffBinder(e)
	e.table.Int64("kernel/numa_tiering", "enable tiered NUMA management (Chrono)", &e.numaTiering, nil, nil)
	// The injector's streams derive from (Seed, Plan) only — never from
	// rMaster — so enabling injection shifts no engine stream, and a
	// disabled plan builds no injector at all.
	e.inj = faultinject.New(cfg.Seed, cfg.Faults)
	return e
}

// Injector returns the fault injector, nil when injection is disabled.
func (e *Engine) Injector() *faultinject.Injector { return e.inj }

// Clock returns the virtual clock.
func (e *Engine) Clock() *simclock.Clock { return e.clock }

// Node returns the memory node.
func (e *Engine) Node() *mem.Node { return e.node }

// Sysctl returns the runtime parameter table.
func (e *Engine) Sysctl() *sysctl.Table { return e.table }

// RNG returns the policy random stream (policy.Kernel).
func (e *Engine) RNG() *rng.Source { return e.rPolicy }

// WorkloadRNG returns the stream reserved for workload generators.
func (e *Engine) WorkloadRNG() *rng.Source { return e.rWorkload }

// Pages returns the dense page table.
func (e *Engine) Pages() []*vm.Page { return e.pages }

// Processes returns all processes.
func (e *Engine) Processes() []*vm.Process {
	out := make([]*vm.Process, len(e.procs))
	for i, ps := range e.procs {
		out[i] = ps.proc
	}
	return out
}

// Config returns the engine configuration (after defaulting).
func (e *Engine) Config() Config { return e.cfg }

// AddProcess registers a process with the given thread count. Its pages
// are not yet resident; call MapProcess after setting the access pattern.
func (e *Engine) AddProcess(p *vm.Process, threads int) {
	if threads <= 0 {
		threads = 1
	}
	// Slot is the dense engine index of the process; hot paths (fault
	// replay, alias rebuild, page rates) use it instead of the byPID map.
	p.Slot = len(e.procs)
	ps := &procState{proc: p, threads: threads}
	e.procs = append(e.procs, ps)
	e.byPID[p.PID] = ps
}

// PageSizeMode selects base- or huge-page mapping for MapProcess.
type PageSizeMode int

// Mapping granularities (Figure 11 compares -base vs -huge).
const (
	BasePages PageSizeMode = iota
	HugePages
)

// MapProcess makes every VMA page of p resident. Allocation fills the fast
// tier down to its high watermark first (demand paging with kswapd
// headroom), then falls back to the slow tier — matching the initial
// placement the paper's workloads see after sequential initialization.
// With interleave > 1, residency is granted in chunks round-robin across
// processes mapped in the same call batch; callers wanting concurrent-init
// behaviour should use MapAll.
func (e *Engine) MapProcess(p *vm.Process, mode PageSizeMode) error {
	return e.mapRange(e.byPID[p.PID], mode)
}

// MapAll maps every registered process, interleaving allocation in chunks
// across processes so concurrent initialization shares the fast tier
// proportionally.
func (e *Engine) MapAll(mode PageSizeMode) error {
	type cursor struct {
		ps   *procState
		vma  int
		next uint64
	}
	var cur []*cursor
	for _, ps := range e.procs {
		if len(ps.proc.VMAs()) > 0 {
			cur = append(cur, &cursor{ps: ps, next: ps.proc.VMAs()[0].Start})
		}
	}
	const chunk = 64 // base pages granted per process per round
	for len(cur) > 0 {
		var live []*cursor
		for _, c := range cur {
			vmas := c.ps.proc.VMAs()
			granted := uint64(0)
			for granted < chunk && c.vma < len(vmas) {
				v := vmas[c.vma]
				if c.next >= v.End() {
					c.vma++
					if c.vma < len(vmas) {
						c.next = vmas[c.vma].Start
					}
					continue
				}
				n := uint64(1)
				if mode == HugePages {
					n = uint64(e.cfg.HugeFactor)
					if c.next+n > v.End() {
						n = v.End() - c.next
					}
				}
				if _, err := e.mapPage(c.ps, c.next, int32(n), mode == HugePages && n == uint64(e.cfg.HugeFactor)); err != nil {
					return err
				}
				c.next += n
				granted += n
			}
			if c.vma < len(vmas) {
				live = append(live, c)
			}
		}
		cur = live
	}
	for _, ps := range e.procs {
		ps.proc.RecomputeTotalWeight()
		e.recomputeProcAggregates(ps)
	}
	e.aliasStructural = true
	return nil
}

func (e *Engine) mapRange(ps *procState, mode PageSizeMode) error {
	for _, v := range ps.proc.VMAs() {
		for vpn := v.Start; vpn < v.End(); {
			n := uint64(1)
			if mode == HugePages {
				n = uint64(e.cfg.HugeFactor)
				if vpn+n > v.End() {
					n = v.End() - vpn
				}
			}
			if _, err := e.mapPage(ps, vpn, int32(n), mode == HugePages && n == uint64(e.cfg.HugeFactor)); err != nil {
				return err
			}
			vpn += n
		}
	}
	ps.proc.RecomputeTotalWeight()
	e.recomputeProcAggregates(ps)
	e.aliasStructural = true
	return nil
}

// mapPage creates one resident page of size n base pages.
func (e *Engine) mapPage(ps *procState, vpn uint64, n int32, huge bool) (*vm.Page, error) {
	tier := mem.FastTier
	// Fill DRAM down to the high watermark, then overflow to slow; when
	// the slow tier is also exhausted, dip into the fast-tier reserve
	// (the kernel allocates below watermarks before failing).
	if e.node.Free(mem.FastTier)-int64(n) < e.node.Watermarks(mem.FastTier).High {
		tier = mem.SlowTier
	}
	if err := e.node.Alloc(tier, int64(n)); err != nil {
		tier = tier.Other()
		if err2 := e.node.Alloc(tier, int64(n)); err2 != nil {
			return nil, fmt.Errorf("engine: map pid %d vpn %#x: %w", ps.proc.PID, vpn, err2)
		}
	}
	pg := &vm.Page{
		ID:   int64(len(e.pages)),
		VPN:  vpn,
		Proc: ps.proc,
		Tier: tier,
		Size: n,
	}
	if huge {
		pg.Flags |= vm.FlagHuge
	}
	e.pages = append(e.pages, pg)
	e.pageW = append(e.pageW, 0)
	e.pageRF = append(e.pageRF, 1)
	e.everSlow = append(e.everSlow, tier == mem.SlowTier)
	e.everPromoted = append(e.everPromoted, false)
	ps.proc.InsertPage(pg)
	e.links.Grow(len(e.pages))
	e.kLRU[tier].AddNew(pg.ID)
	if tier == mem.FastTier {
		ps.residentFast += int64(n)
	} else {
		ps.residentSlow += int64(n)
	}
	if e.pol != nil {
		e.pol.OnPageMapped(pg)
	}
	return pg, nil
}

// SetPattern updates the access pattern of one base page and refreshes the
// covering page's cached weight. Call FlushPattern(p) after a batch.
func (e *Engine) SetPattern(p *vm.Process, vpn uint64, weight, readFrac float64) {
	p.SetPattern(vpn, weight, readFrac)
}

// FlushPattern applies a batch of SetPattern changes to p's cached page
// weights and per-tier masses. It walks only the dirty pattern indices the
// process recorded since the last flush — not every VMA — applying
// per-page deltas, so a drift phase that retouches a few thousand pages
// costs O(touched), independent of the working-set size.
//
//chrono:hotpath
func (e *Engine) FlushPattern(p *vm.Process) {
	dirty := p.DirtyIndexes()
	if len(dirty) == 0 {
		return
	}
	ps := e.byPID[p.PID]
	e.growScratch()
	// Dedup covering pages: a huge page spans many pattern indices but
	// must be re-weighed once. First-touch order keeps the delta
	// application deterministic.
	for _, i := range dirty {
		pg := p.PageAt(p.IndexVPN(i))
		if pg == nil || e.flushMark[pg.ID] {
			continue
		}
		e.flushMark[pg.ID] = true
		e.flushList = append(e.flushList, pg.ID)
	}
	for _, id := range e.flushList {
		e.flushMark[id] = false
		pg := e.pages[id]
		w, rf := p.PageWeight(pg)
		ow, orf := e.pageW[id], e.pageRF[id]
		e.pageW[id] = w
		e.pageRF[id] = rf
		if pg.Flags.Has(vm.FlagSwapped) {
			ps.wSwap += w - ow
		} else {
			ps.wRead[pg.Tier] += w*rf - ow*orf
			ps.wWrite[pg.Tier] += w*(1-rf) - ow*(1-orf)
		}
		ps.wTot += w - ow
	}
	e.flushList = e.flushList[:0]
	p.ClearDirty()
	e.aliasWeightDirty = true
}

// growScratch sizes the per-page scratch marks to the page table.
func (e *Engine) growScratch() {
	if len(e.flushMark) < len(e.pages) {
		//chrono:allow hotalloc grows once per page-table extension, then reused every flush
		e.flushMark = append(e.flushMark, make([]bool, len(e.pages)-len(e.flushMark))...)
	}
}

// recomputeProcAggregates rebuilds ps's cached page weights and per-tier
// masses from scratch (used at map time; steady-state updates go through
// FlushPattern's incremental path). Swapped pages contribute to wSwap, not
// to any tier mass.
func (e *Engine) recomputeProcAggregates(ps *procState) {
	for t := range ps.wRead {
		ps.wRead[t] = 0
		ps.wWrite[t] = 0
	}
	ps.wTot = 0
	ps.wSwap = 0
	e.growScratch()
	seen := e.flushMark
	for _, v := range ps.proc.VMAs() {
		for vpn := v.Start; vpn < v.End(); vpn++ {
			pg := ps.proc.PageAt(vpn)
			if pg == nil || seen[pg.ID] {
				continue
			}
			seen[pg.ID] = true
			e.flushList = append(e.flushList, pg.ID)
			w, rf := ps.proc.PageWeight(pg)
			e.pageW[pg.ID] = w
			e.pageRF[pg.ID] = rf
			if pg.Flags.Has(vm.FlagSwapped) {
				ps.wSwap += w
			} else {
				ps.wRead[pg.Tier] += w * rf
				ps.wWrite[pg.Tier] += w * (1 - rf)
			}
			ps.wTot += w
		}
	}
	for _, id := range e.flushList {
		seen[id] = false
	}
	e.flushList = e.flushList[:0]
	// A full rebuild subsumes any pending incremental work.
	ps.proc.ClearDirty()
}

// PageWeightCached returns the cached access weight of a page.
func (e *Engine) PageWeightCached(id int64) float64 { return e.pageW[id] }

// ProcOf returns the engine state for a process.
func (e *Engine) procOf(p *vm.Process) *procState { return e.byPID[p.PID] }

// PageRate returns the current accesses/second of a page. This is the
// ground-truth rate — available to the harness and the fault generator,
// not part of the policy.Kernel surface.
func (e *Engine) PageRate(pg *vm.Page) float64 {
	ps := e.procs[pg.Proc.Slot]
	if ps.wTot == 0 {
		return 0
	}
	return ps.rate * e.pageW[pg.ID] / ps.wTot
}

// ResidentFast returns the resident fast-tier base pages of p.
func (e *Engine) ResidentFast(p *vm.Process) int64 { return e.byPID[p.PID].residentFast }

// ResidentSlow returns the resident slow-tier base pages of p.
func (e *Engine) ResidentSlow(p *vm.Process) int64 { return e.byPID[p.PID].residentSlow }

// EnablePatternRestore opts a process's access pattern into checkpoint
// write-back: Restore copies the snapshot's per-page weight and read
// fraction back into the process pattern arrays (see restorePattern).
// Dynamic workloads that rewrite patterns at phase boundaries call this
// from Build; the contract in exchange is base-page mapping and strictly
// positive weights everywhere, so the write-back reconstructs the exact
// pattern the snapshot saw and the resumed run's phase ticks observe the
// same dirty sets an uninterrupted run would.
func (e *Engine) EnablePatternRestore(p *vm.Process) {
	e.patternRestore = append(e.patternRestore, p)
}

// AttachPolicy installs the tiering policy. Must be called after MapAll
// and before Run.
func (e *Engine) AttachPolicy(p policy.Policy) {
	e.pol = p
	p.Attach(e)
}

// Policy returns the attached policy (nil before AttachPolicy).
func (e *Engine) Policy() policy.Policy { return e.pol }

// Run executes the simulation for the given virtual duration.
func (e *Engine) Run(d simclock.Duration) *Metrics {
	e.horizon = e.clock.Now() + d
	// Prime rates and bandwidth state before the first epoch so early
	// faults see sane rates.
	e.updateRates()
	e.updateBandwidth(0)
	e.updateRates()
	e.migTokens = float64(e.cfg.MigrationBWBytes) // one second of initial budget
	e.startTickers()
	e.runLoop()
	return e.finishRun()
}

// startTickers arms the engine's periodic work under stable checkpoint
// keys, in a fixed order so event sequence numbers are reproducible. The
// ticker objects are created once and re-armed on later runs: a keyed
// ticker keeps its registry slot through Cancel/Restart, so repeated Run
// calls (sweeps, benchmarks) allocate nothing here.
func (e *Engine) startTickers() {
	if e.engTickers == nil {
		e.engTickers = []*simclock.Ticker{
			e.clock.EveryKey("engine/epoch", e.cfg.EpochNS, func(now simclock.Time) { e.epochTick(now) }),
			// Kernel LRU aging once per minute: the paper (§2.3) observes that
			// accessed-bit reset intervals in practice "last from minutes to
			// hours", which is why hardware-bit recency is a coarse hotness
			// signal. Faster aging would hand every policy an unrealistically
			// sharp reclaim oracle.
			e.clock.EveryKey("engine/age", simclock.Minute, func(now simclock.Time) { e.ageLRU() }),
			// kswapd watermark check every 500 ms.
			e.clock.EveryKey("engine/kswapd", 500*simclock.Millisecond, func(now simclock.Time) { e.kswapd() }),
			// cgroup memory.limit enforcement every second (§3.3.1).
			e.clock.EveryKey("engine/cgroup", simclock.Second, func(now simclock.Time) { e.cgroupReclaim(now) }),
		}
	} else {
		for _, t := range e.engTickers {
			t.Restart()
		}
	}
	e.runTickers = e.engTickers
}

// finishRun is the common tail of Run and ResumeRun: cancel the periodic
// work, stamp the duration, and run the final invariant check.
func (e *Engine) finishRun() *Metrics {
	for _, t := range e.runTickers {
		t.Cancel()
	}
	e.runTickers = nil
	e.M.Duration = e.clock.Now()
	e.sanitizeTick()
	return &e.M
}

// ResumeRun continues a Restored simulation to its recorded horizon. The
// priming and ticker arming Run performs are already part of the restored
// state, so it only drains the clock and closes out the run.
func (e *Engine) ResumeRun() *Metrics {
	e.runLoop()
	return e.finishRun()
}
