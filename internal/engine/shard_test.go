package engine

// Fences for the sharded fault machinery (shard.go): the shard count, the
// worker count, and the order in which shards materialize their deferred
// Protects are pure execution strategy — none of them may change a single
// simulated byte.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"chrono/internal/faultinject"
	"chrono/internal/simclock"
	"chrono/internal/vm"
)

// TestShardCountInvariant runs the checkpoint-fence scenario to completion
// under a spread of shard counts (including non-divisors of the page count)
// and demands a byte-identical final state — metrics, histograms, page
// table, node accounting, and policy counters.
func TestShardCountInvariant(t *testing.T) {
	const dur = 60 * simclock.Second
	run := func(shards int) []byte {
		pol, mode := newFencePolicy(t, "Chrono")
		e := buildCkptEngine(t, pol, mode, faultinject.Plan{}, shards)
		e.Run(dur)
		return finalState(t, e)
	}
	want := run(1)
	for _, shards := range []int{2, 3, 5, 8, 13} {
		if got := run(shards); !bytes.Equal(got, want) {
			t.Errorf("shards=%d diverged from shards=1 (%s)", shards, diffHint(got, want))
		}
	}
}

// TestShardWorkerCountInvariant pins the other half of the contract: for a
// fixed shard count, the materialization worker count (inline, 2, many)
// never affects results.
func TestShardWorkerCountInvariant(t *testing.T) {
	const dur = 60 * simclock.Second
	run := func(workers int) []byte {
		pol, mode := newFencePolicy(t, "Chrono")
		e := New(Config{Seed: 7, FastGB: 4, SlowGB: 12, Shards: 8, ShardWorkers: workers})
		p := vm.NewProcess(1, "sw", 3000)
		start := p.VMAs()[0].Start
		for i := uint64(0); i < 3000; i++ {
			w := 1.0
			if i >= 2500 {
				w = 60
			}
			p.SetPattern(start+i, w, 0.7)
		}
		e.AddProcess(p, 4)
		if err := e.MapAll(mode); err != nil {
			t.Fatal(err)
		}
		e.AttachPolicy(pol)
		e.Run(dur)
		return finalState(t, e)
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !bytes.Equal(got, want) {
			t.Errorf("ShardWorkers=%d diverged from inline (%s)", workers, diffHint(got, want))
		}
	}
}

// TestShardMergeOrderIndependence is the property test behind the worker
// fence: materializing the shards in ANY order — here, random permutations,
// standing in for arbitrary goroutine completion orders — must produce the
// identical globally merged fault sequence. It drives materializeShard
// directly so the permutation is exact rather than left to the scheduler.
func TestShardMergeOrderIndependence(t *testing.T) {
	type fault struct {
		id  int64
		at  simclock.Time
		seq int
	}
	// run protects a batch of pages (every shard gets several), materializes
	// the shards in the given order, drains, and returns the fault log.
	run := func(order []int) []fault {
		e := New(Config{Seed: 11, FastGB: 4, SlowGB: 12, Shards: 8, ShardWorkers: 1})
		addUniformProc(e, 1, 512, 1)
		if err := e.MapAll(BasePages); err != nil {
			t.Fatal(err)
		}
		var log []fault
		e.AttachPolicy(&recordingPolicy{onFault: func(pg *vm.Page, now simclock.Time) {
			log = append(log, fault{id: pg.ID, at: now, seq: len(log)})
		}})
		e.horizon = 20 * simclock.Second
		e.updateRates()
		for _, pg := range e.Pages()[:256] {
			e.Protect(pg)
		}
		now := e.clock.Now()
		for _, si := range order {
			e.materializeShard(e.shards[si], now)
		}
		if e.havePending() {
			t.Fatal("permutation did not cover every shard with pending Protects")
		}
		drainTo(e, 15*simclock.Second)
		return log
	}

	inOrder := []int{0, 1, 2, 3, 4, 5, 6, 7}
	want := run(inOrder)
	if len(want) == 0 {
		t.Fatal("scenario produced no faults — the property is vacuous")
	}
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		perm := r.Perm(8)
		got := run(perm)
		if len(got) != len(want) {
			t.Fatalf("order %v: %d faults, want %d", perm, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("order %v: fault %d = %+v, want %+v", perm, i, got[i], want[i])
			}
		}
	}
}

// TestShardQueueReplacement pins the eager-replacement contract of the
// shard queue: pushing a newer entry for a page evicts the stale one, so
// Protect/Unprotect churn cannot grow the heap beyond the live page count.
func TestShardQueueReplacement(t *testing.T) {
	var q simclock.ShardQueue
	q.SetStride(4)
	for cycle := 0; cycle < 1000; cycle++ {
		for id := int64(0); id < 16; id += 4 { // one shard's IDs under stride 4
			q.Push(simclock.ShardEntry{At: simclock.Time(1000 + cycle), ID: id, Seq: uint64(cycle)})
		}
		if q.Len() > 4 {
			t.Fatalf("cycle %d: queue holds %d entries for 4 pages — replacement broken", cycle, q.Len())
		}
	}
	for want := int64(0); want < 16; want += 4 {
		en, ok := q.PopLE(simclock.MaxTime)
		if !ok || en.ID != want || en.Seq != 999 {
			t.Fatalf("pop: got (%v,%v), want ID %d Seq 999", en, ok, want)
		}
	}
	if _, ok := q.PopLE(simclock.MaxTime); ok {
		t.Fatal("queue not empty after draining")
	}
}

// TestShardQueueCanonicalOrder pins the (At, ID, Seq) pop order on ties.
func TestShardQueueCanonicalOrder(t *testing.T) {
	var q simclock.ShardQueue
	entries := []simclock.ShardEntry{
		{At: 50, ID: 9, Seq: 1},
		{At: 50, ID: 2, Seq: 7},
		{At: 10, ID: 30, Seq: 3},
		{At: 50, ID: 4, Seq: 2},
		{At: 99, ID: 1, Seq: 1},
	}
	for _, e := range entries {
		q.Push(e)
	}
	var got []string
	for {
		en, ok := q.PopLE(simclock.MaxTime)
		if !ok {
			break
		}
		got = append(got, fmt.Sprintf("%d/%d/%d", en.At, en.ID, en.Seq))
	}
	want := []string{"10/30/3", "50/2/7", "50/4/2", "50/9/1", "99/1/1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("pop order %v, want %v", got, want)
	}
}
