package engine

// Checkpoint coverage fence, the reflective twin of the bit-identity
// test: every field of Engine (and of each checkpointable policy) must be
// either mapped to the state field(s) that serialize it or allowlisted
// with a justification for why a fresh build reconstructs it. Adding a
// mutable field without extending Snapshot/Restore fails here by name,
// instead of as an unexplained byte diff in the resume fence — and the
// reverse direction catches state fields that stop being backed by
// anything.

import (
	"reflect"
	"strings"
	"testing"

	"chrono/internal/faultinject"
	"chrono/internal/simclock"
)

// engineCovered maps each Engine field to the EngineState field(s) that
// carry it (comma-separated when one snapshot field folds several).
var engineCovered = map[string]string{
	"clock":     "Clock",
	"node":      "Node",
	"rMaster":   "RMaster",
	"rFault":    "RFault",
	"rPolicy":   "RPolicy",
	"rWorkload": "RWorkload",
	"rPEBS":     "RPEBS",
	"inj":       "Inj",

	"pages":        "Pages",
	"pageW":        "Pages", // the W column
	"pageRF":       "Pages", // the RF column
	"everSlow":     "Pages", // sparse EverSlow set
	"everPromoted": "Pages", // sparse EverPromoted set
	"procs":        "Procs",
	"kLRU":         "KLRU",

	"pol": "PolicyName,Policy",

	"epochMigBytes": "EpochMigBytes",
	"kernelNSEpoch": "KernelNSEpoch",
	"kernelFrac":    "KernelFrac",
	"migTokens":     "MigTokens",
	"slowUtilEMA":   "SlowUtilEMA",
	"fastUtilEMA":   "FastUtilEMA",
	"slowLatMult":   "SlowLatMult",
	"fastLatMult":   "FastLatMult",

	"aliasTable":       "HasAlias", // contents rebuilt from AliasW on restore
	"aliasIDs":         "AliasIDs",
	"aliasW":           "AliasW",
	"aliasBuiltAt":     "AliasBuiltAt",
	"aliasWeightDirty": "AliasWeightDirty",
	"aliasStructural":  "AliasStructural",

	"numaTiering": "NumaTiering",
	"horizon":     "Horizon",
	"M":           "Metrics",
}

// engineRebuilt lists Engine fields a restore deliberately does NOT
// serialize, with the reason a fresh New+Build+Attach reconstructs them.
var engineRebuilt = map[string]string{
	"cfg":        "construction-time configuration; immutable after New",
	"table":      "sysctl registrations are code-defined; writable values live in numaTiering and the policy state",
	"byPID":      "index over procs, rebuilt by AddProcess during Build",
	"links":      "LRU link storage; regrown by restorePages and refilled by KLRU SetState",
	"faultCB":    "closure over the engine, re-created by New; pending deliveries rebind through the clock's fault binder",
	"flushMark":  "scratch buffer, dead between events",
	"flushList":  "scratch buffer, dead between events",
	"sanitize":   "derived from Config and build tags",
	"runTickers": "re-armed by startTickers inside Restore",
	"EpochHook":  "harness closure; the harness reattaches it before ResumeRun",
}

// TestEngineStateCoversAllFields cross-checks Engine against EngineState
// in both directions.
func TestEngineStateCoversAllFields(t *testing.T) {
	stateFields := map[string]bool{}
	st := reflect.TypeOf(EngineState{})
	for i := 0; i < st.NumField(); i++ {
		stateFields[st.Field(i).Name] = false
	}

	et := reflect.TypeOf(Engine{})
	for i := 0; i < et.NumField(); i++ {
		name := et.Field(i).Name
		_, covered := engineCovered[name]
		_, rebuilt := engineRebuilt[name]
		switch {
		case covered && rebuilt:
			t.Errorf("Engine.%s is in both engineCovered and engineRebuilt", name)
		case covered:
			for _, sf := range strings.Split(engineCovered[name], ",") {
				if _, ok := stateFields[sf]; !ok {
					t.Errorf("Engine.%s claims EngineState.%s, which does not exist", name, sf)
					continue
				}
				stateFields[sf] = true
			}
		case rebuilt:
			// Justified above; nothing to verify.
		default:
			t.Errorf("Engine.%s is not covered by EngineState and not allowlisted as "+
				"rebuilt-by-code — extend Snapshot/Restore or justify it in engineRebuilt", name)
		}
	}
	for name := range engineCovered {
		if _, ok := et.FieldByName(name); !ok {
			t.Errorf("engineCovered lists %s, which is no longer an Engine field", name)
		}
	}
	for name := range engineRebuilt {
		if _, ok := et.FieldByName(name); !ok {
			t.Errorf("engineRebuilt lists %s, which is no longer an Engine field", name)
		}
	}
	for sf, claimed := range stateFields {
		if !claimed {
			t.Errorf("EngineState.%s is not backed by any Engine field mapping — "+
				"dead state or a missing engineCovered entry", sf)
		}
	}
}

// policyCoverage is the per-policy analogue: field → state field(s), or a
// rebuilt justification. The state struct is obtained from a live,
// attached policy via CheckpointState, so renames on either side fail
// here by name.
type policyCoverage struct {
	covered map[string]string
	rebuilt map[string]string
}

var policyFieldCoverage = map[string]policyCoverage{
	"TPP": {
		covered: map[string]string{
			"scan": "Scan",
		},
		rebuilt: map[string]string{
			"Base": "stateless method set",
			"cfg":  "configuration, finalized in Attach",
			"k":    "kernel handle, re-bound by Attach",
		},
	},
	"Memtis": {
		covered: map[string]string{
			"sampler":        "Sampler",
			"periods":        "Periods",
			"cycles":         "Cycles",
			"TransientSkips": "TransientSkips",
		},
		rebuilt: map[string]string{
			"Base": "stateless method set",
			"cfg":  "configuration, finalized in Attach",
			"k":    "kernel handle, re-bound by Attach",
		},
	},
	"FlexMem": {
		covered: map[string]string{
			"sampler":          "Sampler",
			"scan":             "Scan",
			"periods":          "Periods",
			"cycles":           "Cycles",
			"hotBin":           "HotPIDs,HotBins",
			"TimelyPromotions": "TimelyPromotions",
			"TransientSkips":   "TransientSkips",
		},
		rebuilt: map[string]string{
			"Base": "stateless method set",
			"cfg":  "configuration, finalized in Attach",
			"k":    "kernel handle, re-bound by Attach",
		},
	},
	"Chrono": {
		covered: map[string]string{
			// Options is construction-time configuration except for the
			// three sysctl-writable knobs, which are serialized.
			"opt":            "DeltaStep,PVictim,ThrashThreshold",
			"scan":           "Scan",
			"thresholdMS":    "ThresholdMS",
			"rateLimitBps":   "RateLimitBps",
			"cands":          "Cands",
			"queue":          "Queue",
			"enqueuedBytes":  "EnqueuedBytes",
			"enqueueRateEMA": "EnqueueRateEMA",
			"promotedPages":  "PromotedPages",
			"thrashEvents":   "ThrashEvents",
			"retries":        "Retries",
			"heat":           "Heat",
			"samples":        "Samples",
			"probes":         "Probes",
			"ThresholdHist":  "ThresholdHist",
			"RateLimitHist":  "RateLimitHist",
			"Enqueued":       "Enqueued",
			"Promoted":       "Promoted",
			"Demoted":        "Demoted",
			"ThrashTotal":    "ThrashTotal",
			"DCSCSamples":    "DCSCSamples",
			"FilteredOut":    "FilteredOut",
			"QueueDropped":   "QueueDropped",
			"RetryDropped":   "RetryDropped",
		},
		rebuilt: map[string]string{
			"Base":        "stateless method set",
			"k":           "kernel handle, re-bound by Attach",
			"citScale":    "derived from Config.CostScale at Attach",
			"CITObserver": "harness closure; the harness reattaches it",
		},
	},
}

// TestPolicyStateCoversAllFields attaches each checkpointable policy to a
// real engine, takes its checkpoint state, and cross-checks the policy
// struct against the state struct in both directions.
func TestPolicyStateCoversAllFields(t *testing.T) {
	for name, cov := range policyFieldCoverage {
		t.Run(name, func(t *testing.T) {
			pol, mode := newFencePolicy(t, name)
			e := buildCkptEngine(t, pol, mode, faultinject.Plan{})
			e.Run(1 * simclock.Second)

			raw, err := pol.(interface{ CheckpointState() (any, error) }).CheckpointState()
			if err != nil {
				t.Fatal(err)
			}
			st := reflect.TypeOf(raw)
			stateFields := map[string]bool{}
			for i := 0; i < st.NumField(); i++ {
				stateFields[st.Field(i).Name] = false
			}

			pt := reflect.TypeOf(pol).Elem()
			for i := 0; i < pt.NumField(); i++ {
				fname := pt.Field(i).Name
				_, covered := cov.covered[fname]
				_, rebuilt := cov.rebuilt[fname]
				switch {
				case covered && rebuilt:
					t.Errorf("%s.%s is in both covered and rebuilt", name, fname)
				case covered:
					for _, sf := range strings.Split(cov.covered[fname], ",") {
						if _, ok := stateFields[sf]; !ok {
							t.Errorf("%s.%s claims state field %s, which does not exist in %s", name, fname, sf, st)
							continue
						}
						stateFields[sf] = true
					}
				case rebuilt:
				default:
					t.Errorf("%s.%s is not covered by %s and not allowlisted as rebuilt-by-code", name, fname, st)
				}
			}
			for fname := range cov.covered {
				if _, ok := pt.FieldByName(fname); !ok {
					t.Errorf("coverage map lists %s.%s, which no longer exists", name, fname)
				}
			}
			for fname := range cov.rebuilt {
				if _, ok := pt.FieldByName(fname); !ok {
					t.Errorf("rebuilt map lists %s.%s, which no longer exists", name, fname)
				}
			}
			for sf, claimed := range stateFields {
				if !claimed {
					t.Errorf("%s state field %s is not backed by any policy field mapping", name, sf)
				}
			}
		})
	}
}
