package engine

import (
	"chrono/internal/mem"
	"chrono/internal/simclock"
	"chrono/internal/units"
	"chrono/internal/vm"
)

// This file implements cgroup memory limits and slow-tier reclamation
// (paper §3.3.1): "It also enables Chrono to accommodate user-defined
// memory limits (e.g., cgroups memory.limit), while prioritizing the
// retention of hot pages in the fast tier. When memory limits are reached,
// Chrono initiates slow-tier reclamation to relieve memory pressure while
// maintaining the placement for hot pages."
//
// A reclaimed ("swapped") page stays in the page table but occupies no
// tier memory; its accesses pay the swap-device latency in the closed-loop
// model. Reclaim victims come from the process's slow-tier pages whose
// accessed bit shows no recent reference — cold data leaves, hot placement
// is untouched.

// SwapLatencyNS is the per-access cost of a swapped page (fast NVMe swap:
// queueing + 4K read).
const SwapLatencyNS = 9000

// SwappedOut reports the total base pages currently reclaimed to backing
// storage.
func (e *Engine) SwappedOut() int64 {
	var n int64
	for _, ps := range e.procs {
		n += ps.residentSwap
	}
	return n
}

// ResidentSwap returns the swapped base pages of one process.
func (e *Engine) ResidentSwap(p *vm.Process) int64 { return e.byPID[p.PID].residentSwap }

// SwapOut reclaims one slow-tier page to backing storage. It reports
// false when the page is not an unswapped slow-tier resident.
func (e *Engine) SwapOut(pg *vm.Page) bool {
	if pg.Tier != mem.SlowTier || pg.Flags.Has(vm.FlagSwapped) {
		return false
	}
	if pg.Flags.Has(vm.FlagProtNone) {
		e.Unprotect(pg)
	}
	e.kLRU[mem.SlowTier].Drop(pg.ID)
	e.node.FreePages(mem.SlowTier, int64(pg.Size))
	pg.Flags |= vm.FlagSwapped

	ps := e.byPID[pg.Proc.PID]
	w := e.pageW[pg.ID]
	rf := e.pageRF[pg.ID]
	ps.wRead[mem.SlowTier] -= w * rf
	ps.wWrite[mem.SlowTier] -= w * (1 - rf)
	ps.wSwap += w
	ps.residentSlow -= int64(pg.Size)
	ps.residentSwap += int64(pg.Size)

	// Writeback + unmap cost.
	e.ChargeKernel(units.NS(2500 * e.cfg.CostScale))
	e.M.SwapOuts += int64(pg.Size)
	return true
}

// swapIn brings a swapped page back into the given tier. Returns false
// when the tier lacks space.
func (e *Engine) swapIn(pg *vm.Page, to mem.TierID) bool {
	if !pg.Flags.Has(vm.FlagSwapped) {
		return false
	}
	if err := e.node.Alloc(to, int64(pg.Size)); err != nil {
		return false
	}
	pg.Flags &^= vm.FlagSwapped
	pg.Tier = to
	e.kLRU[to].AddNew(pg.ID)

	ps := e.byPID[pg.Proc.PID]
	w := e.pageW[pg.ID]
	rf := e.pageRF[pg.ID]
	ps.wSwap -= w
	ps.wRead[to] += w * rf
	ps.wWrite[to] += w * (1 - rf)
	ps.residentSwap -= int64(pg.Size)
	if to == mem.FastTier {
		ps.residentFast += int64(pg.Size)
	} else {
		ps.residentSlow += int64(pg.Size)
	}
	e.ChargeKernel(units.NS(3000 * e.cfg.CostScale))
	e.M.SwapIns += int64(pg.Size)
	return true
}

// cgroupReclaim enforces memory.limit on every process: while a process's
// resident footprint exceeds its limit, its idle slow-tier pages are
// reclaimed. A bounded batch runs per tick; victims are chosen by a
// round-robin accessed-bit scan over the process's slow pages, so hot
// pages survive.
func (e *Engine) cgroupReclaim(now simclock.Time) {
	for _, ps := range e.procs {
		limit := ps.proc.MemLimit
		if limit <= 0 {
			continue
		}
		over := ps.residentFast + ps.residentSlow - limit
		if over <= 0 {
			continue
		}
		e.reclaimProcess(ps, over)
	}
}

// reclaimProcess swaps out up to target base pages of ps, preferring
// pages whose accessed bit is clear; if the idle scan cannot find enough,
// it takes referenced slow pages too (hard limits must be enforced).
func (e *Engine) reclaimProcess(ps *procState, target int64) {
	var candidates []*vm.Page
	var fallback []*vm.Page
	scanned := 0
	const scanBudget = 512
	for _, pg := range e.pages {
		if target <= 0 || scanned >= scanBudget {
			break
		}
		if pg == nil || pg.Proc != ps.proc || pg.Tier != mem.SlowTier ||
			pg.Flags.Has(vm.FlagSwapped) {
			continue
		}
		scanned++
		if !e.AccessedTestAndClear(pg) {
			candidates = append(candidates, pg)
			target -= int64(pg.Size)
		} else {
			fallback = append(fallback, pg)
		}
	}
	for _, pg := range candidates {
		e.SwapOut(pg)
	}
	for _, pg := range fallback {
		if target <= 0 {
			break
		}
		if e.SwapOut(pg) {
			target -= int64(pg.Size)
		}
	}
}
