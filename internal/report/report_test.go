package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "Name", "Value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", 1200.0)
	tb.Note = "a note"
	out := tb.String()
	for _, want := range []string{"== Demo ==", "Name", "Value", "alpha", "1.500", "beta", "1200", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Header separator present.
	if !strings.Contains(out, "----") {
		t.Fatal("missing separator")
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tb := NewTable("", "A", "LongHeader")
	tb.AddRow("xxxxxxxxxx", "y")
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("too few lines: %v", lines)
	}
	// The value column must start at the same offset in every line.
	idxHeader := strings.Index(lines[0], "LongHeader")
	idxRow := strings.Index(lines[2], "y")
	if idxHeader != idxRow {
		t.Fatalf("columns misaligned: header@%d row@%d\n%s", idxHeader, idxRow, tb.String())
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.0)
	tb.AddRow(0.123456)
	tb.AddRow(42.42)
	tb.AddRow(98765.4)
	rows := tb.Rows
	if rows[0][0] != "0" {
		t.Fatalf("zero formatted as %q", rows[0][0])
	}
	if rows[1][0] != "0.123" {
		t.Fatalf("small float %q", rows[1][0])
	}
	if rows[2][0] != "42.4" {
		t.Fatalf("medium float %q", rows[2][0])
	}
	if rows[3][0] != "98765" {
		t.Fatalf("large float %q", rows[3][0])
	}
}

func TestMixedCellTypes(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow(7, "text", 3.14)
	row := tb.Rows[0]
	if row[0] != "7" || row[1] != "text" || row[2] != "3.140" {
		t.Fatalf("row=%v", row)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] == runes[3] {
		t.Fatal("min and max render the same")
	}
	// A constant series renders without panicking.
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Fatal("flat sparkline")
	}
}

func TestDownsample(t *testing.T) {
	in := make([]float64, 100)
	for i := range in {
		in[i] = float64(i)
	}
	out := Downsample(in, 10)
	if len(out) != 10 {
		t.Fatalf("downsampled to %d", len(out))
	}
	if out[0] != 0 {
		t.Fatal("first point lost")
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatal("downsampling reordered points")
		}
	}
	// No-ops.
	if got := Downsample(in, 200); len(got) != 100 {
		t.Fatal("upsample should be identity")
	}
	if got := Downsample(in, 0); len(got) != 100 {
		t.Fatal("n=0 should be identity")
	}
}
