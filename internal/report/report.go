// Package report renders the evaluation results as fixed-width text
// tables and ASCII series, one renderer per artifact kind in the paper:
// bar-group tables (Figures 6, 7, 8, 11, 12, 13), time-series summaries
// (Figures 9, 10b, 10c), distribution tables (Figures 1, 2), and plain
// key-value tables (Tables 1, 2).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width table.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells render with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "note: %s\n", t.Note)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Sparkline renders values as a unicode mini-chart for time series.
func Sparkline(vs []float64) string {
	if len(vs) == 0 {
		return ""
	}
	const ramp = "▁▂▃▄▅▆▇█"
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vs {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * 7)
		}
		b.WriteRune(rune([]rune(ramp)[idx]))
	}
	return b.String()
}

// Downsample reduces a series to at most n points by striding.
func Downsample(vs []float64, n int) []float64 {
	if len(vs) <= n || n <= 0 {
		return vs
	}
	out := make([]float64, 0, n)
	step := float64(len(vs)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, vs[int(float64(i)*step)])
	}
	return out
}
