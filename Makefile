# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets; `make check` is the full pre-merge gate.

GO ?= go

.PHONY: build test race vet lint simdebug bench check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# chronolint: the repo's determinism and unit-safety linters (detclock,
# detrand, maporder, errsink, unitmix, parcapture, handlecheck,
# floatorder) over every package including cmd/ and examples/ — see
# internal/analysis and DESIGN.md. Exits non-zero on any unsuppressed
# finding.
lint:
	$(GO) run ./cmd/chronolint ./...

# Run the test suite with the engine's invariant sanitizer forced on.
simdebug:
	$(GO) test -tags simdebug ./...

# Hot-path microbenchmarks (simclock event loop, engine epoch, fault
# path). Output is benchstat-compatible: run with COUNT=10 and feed two
# saved runs to benchstat to compare. BENCHTIME=1x gives a smoke pass.
COUNT ?= 1
BENCHTIME ?= 1s
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -count $(COUNT) ./...

check: build vet lint race simdebug

clean:
	$(GO) clean ./...
