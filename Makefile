# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets; `make check` is the full pre-merge gate.

GO ?= go

.PHONY: build test race vet lint simdebug chaos bench resume-check check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# chronolint: the repo's determinism and unit-safety linters (detclock,
# detrand, maporder, errsink, unitmix, parcapture, handlecheck,
# floatorder) over every package including cmd/ and examples/ — see
# internal/analysis and DESIGN.md. Exits non-zero on any unsuppressed
# finding.
lint:
	$(GO) run ./cmd/chronolint ./...

# Run the test suite with the engine's invariant sanitizer forced on.
simdebug:
	$(GO) test -tags simdebug ./...

# Fault-matrix soak at full length: every registered policy and the chaos
# fuzzer under the aggressive fault plan, race detector and sanitizer on.
# CI runs the same selection with -short (reduced virtual duration).
chaos:
	$(GO) test -race -tags simdebug -count 1 -run 'TestFaultMatrix|TestChaos|TestFaultPlan|TestResilientRun' ./internal/engine/ ./internal/experiments/

# Hot-path microbenchmarks (simclock event loop, engine epoch, fault
# path). Output is benchstat-compatible: run with COUNT=10 and feed two
# saved runs to benchstat to compare. BENCHTIME=1x gives a smoke pass.
COUNT ?= 1
BENCHTIME ?= 1s
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -count $(COUNT) ./...

# Kill-and-resume fence: run a quick sweep with -checkpoint-dir, SIGKILL
# it mid-flight, rerun with -resume, and require stdout byte-identical to
# an uninterrupted run (fault injection active throughout).
resume-check:
	bash scripts/resume_check.sh

check: build vet lint race simdebug

clean:
	$(GO) clean ./...
