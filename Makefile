# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets; `make check` is the full pre-merge gate.

GO ?= go

.PHONY: build test race vet lint lint-suggest lint-sarif lint-budget bench-snapshot bench-diff simdebug chaos bench resume-check daemon-smoke results-drift check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -timeout: the experiments suite runs minutes of virtual time per test;
# under the race detector (or the sanitizer) the default 10m per-package
# cap is too tight on small machines. 30m still catches a genuine hang.
race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

# chronolint: the repo's sixteen determinism, unit-safety, concurrency-
# safety, checkpoint-integrity, and interprocedural data-flow analyzers
# over every package including cmd/ and examples/ — see internal/analysis
# and DESIGN.md for the catalog. The driver binary is built once into
# bin/ so repeated lint runs (and the CI cache) skip the compile. Exits
# non-zero on any unsuppressed error-severity finding.
CHRONOLINT_SRCS := $(shell find internal/analysis cmd/chronolint -name '*.go' -not -path '*/testdata/*' 2>/dev/null)

bin/chronolint: $(CHRONOLINT_SRCS)
	$(GO) build -o $@ ./cmd/chronolint

lint: bin/chronolint
	bin/chronolint ./...

# Like lint, but for each finding also prints the exact //chrono:allow
# line to insert above the flagged statement. Never fails: it is a
# fix-it aid, not a gate.
lint-suggest: bin/chronolint
	-bin/chronolint -suggest ./...

# Emit SARIF 2.1.0 for code-scanning upload (CI publishes this to the
# GitHub security tab).
lint-sarif: bin/chronolint
	bin/chronolint -format sarif ./... > chronolint.sarif

# Lint-timing budget: chronolint's wall time over the full tree must stay
# within 2x the committed lint-budget.json baseline — the interprocedural
# flow layer makes lint cost a real quantity worth fencing. Re-record an
# intentional slowdown with WRITE=1 bash scripts/lint_budget.sh.
lint-budget: bin/chronolint
	bash scripts/lint_budget.sh

# Re-record the tier-1 perf baseline: COUNT=10 runs of the hot-path
# benchmarks into a dated JSON snapshot (see scripts/bench_snapshot.sh
# and BENCH_*.json; compare runs with benchstat).
bench-snapshot:
	bash scripts/bench_snapshot.sh

# Perf regression gate: snapshot the hot-path benchmarks into a fresh
# JSON and diff against the committed baseline (BASELINE=... to pick one;
# default: newest BENCH_*.json). Fails on a >10% median ns/op regression
# or ANY allocs/op increase (override the slack with THRESHOLD_PCT).
BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
bench-diff:
	@test -n "$(BASELINE)" || { echo "bench-diff: no BENCH_*.json baseline found"; exit 2; }
	OUT=/tmp/bench_current.json COUNT=5 bash scripts/bench_snapshot.sh
	THRESHOLD_PCT=$(THRESHOLD_PCT) bash scripts/bench_compare.sh $(BASELINE) /tmp/bench_current.json

# Run the test suite with the engine's invariant sanitizer forced on.
simdebug:
	$(GO) test -tags simdebug -timeout 30m ./...

# Fault-matrix soak at full length: every registered policy and the chaos
# fuzzer under the aggressive fault plan, race detector and sanitizer on —
# including the adversarial oscillation soak over all policies ±thrash-
# guard and Nomad. CI runs the same selection with -short (reduced
# virtual duration).
chaos:
	$(GO) test -race -tags simdebug -timeout 30m -count 1 -run 'TestFaultMatrix|TestChaos|TestFaultPlan|TestResilientRun' ./internal/engine/ ./internal/experiments/

# Hot-path microbenchmarks (simclock event loop, engine epoch, fault
# path). Output is benchstat-compatible: run with COUNT=10 and feed two
# saved runs to benchstat to compare. BENCHTIME=1x gives a smoke pass.
COUNT ?= 1
BENCHTIME ?= 1s
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -count $(COUNT) ./...

# Kill-and-resume fence: run a quick sweep with -checkpoint-dir, SIGKILL
# it mid-flight, rerun with -resume, and require stdout byte-identical to
# an uninterrupted run (fault injection active throughout).
resume-check:
	bash scripts/resume_check.sh

# Daemon crash-recovery fence: start chronod, submit over the socket,
# kill -9 mid-flight, restart, and require the auto-resumed run's final
# table byte-identical to an uninterrupted reference — plus explicit
# load-shedding of an over-capacity submit.
daemon-smoke:
	bash scripts/daemon_smoke.sh

# Results-drift guard: regenerate the committed quick-mode table in
# results/ and byte-diff it. Re-record an intentional change with
# WRITE=1 bash scripts/results_drift.sh.
results-drift:
	bash scripts/results_drift.sh

check: build vet lint race simdebug

clean:
	$(GO) clean ./...
