package main

import (
	"strings"
	"testing"

	"chrono/internal/core"
	"chrono/internal/engine"
	"chrono/internal/sysctl"
	"chrono/internal/workload"
)

// liveTable builds the same parameter table the chronoctl demo sees: an
// engine with the Chrono policy attached, so both kernel/* and chrono/*
// keys are registered.
func liveTable(t *testing.T) *sysctl.Table {
	t.Helper()
	e := engine.New(engine.Config{Seed: 1})
	w := &workload.Pmbench{Processes: 2, WorkingSetGB: 1, ReadPct: 70, Stride: 2}
	if err := w.Build(e); err != nil {
		t.Fatal(err)
	}
	e.AttachPolicy(core.New(core.Options{}))
	return e.Sysctl()
}

func TestValidateSets(t *testing.T) {
	tests := []struct {
		name    string
		entries []string
		want    [][2]string // nil means an error is expected
		errHas  []string    // substrings the error must contain
	}{
		{
			name:    "single known key",
			entries: []string{"kernel/numa_tiering=1"},
			want:    [][2]string{{"kernel/numa_tiering", "1"}},
		},
		{
			name: "multiple known keys keep entry order",
			entries: []string{
				"chrono/cit_threshold_ms=200",
				"kernel/numa_tiering=0",
			},
			want: [][2]string{
				{"chrono/cit_threshold_ms", "200"},
				{"kernel/numa_tiering", "0"},
			},
		},
		{
			name:    "value may contain equals sign",
			entries: []string{"kernel/numa_tiering=1=x"},
			want:    [][2]string{{"kernel/numa_tiering", "1=x"}},
		},
		{
			name:    "missing equals sign is malformed",
			entries: []string{"kernel/numa_tiering"},
			errHas:  []string{"bad -set", "key=value"},
		},
		{
			name:    "empty key is malformed",
			entries: []string{"=1"},
			errHas:  []string{"bad -set"},
		},
		{
			name:    "unknown key suggests the nearest parameter",
			entries: []string{"kernel/numa_teiring=1"},
			errHas:  []string{"unknown", "did you mean", "kernel/numa_tiering"},
		},
		{
			name:    "typo in chrono namespace suggests",
			entries: []string{"chrono/cit_treshold_ms=150"},
			errHas:  []string{"did you mean", "chrono/cit_threshold_ms"},
		},
		{
			name: "first bad entry fails the whole batch",
			entries: []string{
				"kernel/numa_tiering=1",
				"totally/bogus=7",
			},
			errHas: []string{"totally/bogus"},
		},
	}
	tbl := liveTable(t)
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := validateSets(tbl, tc.entries)
			if tc.want == nil {
				if err == nil {
					t.Fatalf("validateSets(%v) = %v, want error", tc.entries, got)
				}
				for _, sub := range tc.errHas {
					if !strings.Contains(err.Error(), sub) {
						t.Errorf("error %q missing %q", err, sub)
					}
				}
				return
			}
			if err != nil {
				t.Fatalf("validateSets(%v): %v", tc.entries, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("entry %d: got %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// Validation must reject the unknown key by name and must not mutate
// any parameter — it is a pure pre-flight check.
func TestValidateSetsUnknownKeyIsPure(t *testing.T) {
	tbl := liveTable(t)
	before, err := tbl.Get("kernel/numa_tiering")
	if err != nil {
		t.Fatal(err)
	}
	_, verr := validateSets(tbl, []string{"kernel/numa_tiering=1", "nope/nope=2"})
	if verr == nil || !strings.Contains(verr.Error(), "nope/nope") {
		t.Fatalf("want unknown-key error naming nope/nope, got %v", verr)
	}
	after, err := tbl.Get("kernel/numa_tiering")
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("validation mutated kernel/numa_tiering: %q -> %q", before, after)
	}
}
