// Command chronoctl mirrors the paper's procfs/sysctl administration
// surface (§4, Appendix A step 6) and doubles as the client for a
// running chronod daemon.
//
// Without -socket, chronoctl runs its classic local demonstration: it
// lists, reads, and writes Chrono's runtime parameters against a live
// in-process simulation, applying the writes mid-run and reporting the
// throughput effect a real `echo N > /proc/sys/...` would have. Every
// -set entry is validated *before* the simulation starts: a malformed
// entry or unknown key exits non-zero immediately, with the parameter
// table's "did you mean" suggestions.
//
// With -socket, chronoctl speaks the chronod JSON protocol:
//
//	chronoctl -socket S -op submit -policy Chrono -workload pmbench -secs 120 -wait
//	chronoctl -socket S -op list
//	chronoctl -socket S -op dump -id r0000          # live metrics, memtierd-style
//	chronoctl -socket S -op pause -id r0000
//	chronoctl -socket S -op resume -id r0000
//	chronoctl -socket S -op reconfigure -id r0000 -policy Memtis -set kernel/numa_tiering=1
//	chronoctl -socket S -op cancel -id r0000
//	chronoctl -socket S -op reload
//	chronoctl -socket S -op shutdown
//
// Local examples:
//
//	chronoctl -list
//	chronoctl -set chrono/rate_limit_bps=50000000 -secs 300
//	chronoctl -set chrono/cit_threshold_ms=200 -set chrono/delta_step=0.25
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chrono/internal/core"
	"chrono/internal/daemon"
	"chrono/internal/engine"
	"chrono/internal/report"
	"chrono/internal/simclock"
	"chrono/internal/sysctl"
	"chrono/internal/workload"
)

// setFlags collects repeated -set key=value arguments.
type setFlags []string

func (s *setFlags) String() string { return strings.Join(*s, ",") }
func (s *setFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var sets setFlags
	var (
		// Daemon-client surface.
		socket = flag.String("socket", "", "chronod unix socket; empty runs the local demonstration")
		op     = flag.String("op", "", "daemon op: ping|submit|status|list|pause|resume|cancel|reconfigure|dump|reload|shutdown")
		id     = flag.String("id", "", "run id for status/pause/resume/cancel/reconfigure/dump")
		wait   = flag.Bool("wait", false, "after submit: poll until the run settles and print its final table")

		// Shared simulation shape (submit spec / local demo).
		policy  = flag.String("policy", "", "policy name (submit/reconfigure; empty keeps the default or current)")
		wl      = flag.String("workload", "pmbench", "workload: pmbench|graph500|kvstore|multitenant")
		procs   = flag.Int("procs", 0, "process count (pmbench/multitenant)")
		ws      = flag.Float64("ws", 0, "working set GB per process (pmbench)")
		readPct = flag.Float64("read", 0, "read percentage")
		stride  = flag.Int("stride", 0, "pmbench stride")
		total   = flag.Float64("total", 0, "total working set GB (graph500)")
		flavor  = flag.String("flavor", "", "kvstore flavor: memcached|redis")
		setget  = flag.String("setget", "", "kvstore SET:GET mix (1:10 or 1:1)")
		huge    = flag.Bool("huge", false, "map huge pages")
		secs    = flag.Float64("secs", 240, "virtual run seconds")
		seed    = flag.Uint64("seed", 42, "simulation seed")
		fastGB  = flag.Float64("fast", 0, "fast tier GB")
		slowGB  = flag.Float64("slow", 0, "slow tier GB")
		ppg     = flag.Int64("pages-per-gb", 0, "simulated pages per GB (capacity scale)")
		faults  = flag.String("faults", "", "fault-injection plan spec")

		list = flag.Bool("list", false, "local: list all parameters with current values")
	)
	flag.Var(&sets, "set", "parameter write, key=value (repeatable)")
	flag.Parse()

	if *socket != "" {
		os.Exit(clientMain(&clientArgs{
			socket: *socket, op: *op, id: *id, wait: *wait, policy: *policy,
			sets: sets,
			spec: daemon.RunSpec{
				Policy: *policy, Workload: *wl, Procs: *procs, WSGB: *ws,
				ReadPct: *readPct, Stride: *stride, TotalGB: *total,
				Flavor: *flavor, SetGet: *setget, Huge: *huge, Seed: *seed,
				DurationS: *secs, FastGB: *fastGB, SlowGB: *slowGB,
				PagesPerGB: *ppg, Faults: *faults,
			},
		}))
	}
	os.Exit(localMain(sets, *list, *secs, *seed))
}

// localMain is the classic in-process demonstration.
func localMain(sets setFlags, list bool, secs float64, seed uint64) int {
	// Build a live system so the parameter table is fully populated.
	e := engine.New(engine.Config{Seed: seed})
	w := &workload.Pmbench{Processes: 20, WorkingSetGB: 12, ReadPct: 70, Stride: 2}
	if err := w.Build(e); err != nil {
		fmt.Fprintln(os.Stderr, "chronoctl:", err)
		return 1
	}
	ch := core.New(core.Options{})
	e.AttachPolicy(ch)

	if list {
		t := report.NewTable("Runtime parameters (sysctl/procfs controllers)",
			"Path", "Value", "Description")
		for _, p := range e.Sysctl().All() {
			t.AddRow(p.Path, p.Get(), p.Description)
		}
		t.Fprint(os.Stdout)
		return 0
	}
	if len(sets) == 0 {
		flag.Usage()
		return 2
	}

	// Validate every write before simulating anything: a typo'd key must
	// cost an error message and a non-zero exit, not a wasted run.
	writes, err := validateSets(e.Sysctl(), sets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chronoctl:", err)
		return 1
	}

	half := simclock.FromSeconds(secs / 2)
	var beforeThr float64
	applyFailed := false
	e.Clock().At(half, func(now simclock.Time) {
		beforeThr = e.M.Accesses / now.Seconds() / 1e6
		for _, kv := range writes {
			if err := e.Sysctl().Set(kv[0], kv[1]); err != nil {
				// Keys were pre-validated; this is a value the parameter's
				// own validator rejected.
				fmt.Fprintln(os.Stderr, "chronoctl:", err)
				applyFailed = true
				e.Clock().Stop()
				return
			}
			fmt.Printf("applied %s = %s at t=%.0fs\n", kv[0], kv[1], now.Seconds())
		}
	})
	m := e.Run(simclock.FromSeconds(secs))
	if applyFailed {
		return 1
	}

	afterThr := (m.Accesses - beforeThr*half.Seconds()*1e6) / (secs / 2) / 1e6
	t := report.NewTable("Effect of parameter writes", "Window", "Throughput (Mop/s)")
	t.AddRow("before writes (first half)", beforeThr)
	t.AddRow("after writes (second half)", afterThr)
	t.Fprint(os.Stdout)
	fmt.Printf("final CIT threshold: %.1f ms, rate limit: %.1f MB/s\n",
		ch.ThresholdMS(), ch.RateLimitMBps())
	return 0
}

// validateSets parses -set entries and checks every key against the
// live parameter table before anything runs. Unknown keys fail with the
// table's "did you mean" suggestions; malformed entries fail with the
// expected syntax. Returns the parsed key/value pairs in entry order.
func validateSets(tbl *sysctl.Table, entries []string) ([][2]string, error) {
	writes := make([][2]string, 0, len(entries))
	for _, kv := range entries {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || key == "" {
			return nil, fmt.Errorf("bad -set %q (want key=value)", kv)
		}
		if _, err := tbl.Get(key); err != nil {
			return nil, err
		}
		writes = append(writes, [2]string{key, val})
	}
	return writes, nil
}

// clientArgs carries the daemon-mode invocation.
type clientArgs struct {
	socket string
	op     string
	id     string
	wait   bool
	policy string
	sets   setFlags
	spec   daemon.RunSpec
}

func clientMain(a *clientArgs) int {
	c := &daemon.Client{Socket: a.socket}
	fail := func(msg string) int {
		fmt.Fprintln(os.Stderr, "chronoctl:", msg)
		return 1
	}
	switch a.op {
	case daemon.OpPing:
		resp, err := c.Do(daemon.Request{Op: daemon.OpPing})
		if err != nil {
			return fail(err.Error())
		}
		fmt.Printf("ok (abandoned goroutines: %d)\n", resp.Abandoned)
		return 0

	case daemon.OpSubmit:
		resp, err := c.Do(daemon.Request{Op: daemon.OpSubmit, Spec: &a.spec})
		if err != nil {
			return fail(err.Error())
		}
		if !resp.OK {
			if resp.RetryAfterS > 0 {
				// Load-shed: the structured retry hint gets a distinct
				// exit status so scripts can back off instead of erroring.
				fmt.Fprintln(os.Stderr, "chronoctl:", resp.Error)
				return 3
			}
			return fail(resp.Error)
		}
		fmt.Printf("submitted %s\n", resp.ID)
		if !a.wait {
			return 0
		}
		return waitForRun(c, resp.ID)

	case daemon.OpStatus:
		resp, err := c.Do(daemon.Request{Op: daemon.OpStatus, ID: a.id})
		if err != nil {
			return fail(err.Error())
		}
		if !resp.OK {
			return fail(resp.Error)
		}
		printRun(*resp.Run)
		if resp.Table != "" {
			fmt.Print(resp.Table)
		}
		return 0

	case daemon.OpList:
		resp, err := c.Do(daemon.Request{Op: daemon.OpList})
		if err != nil {
			return fail(err.Error())
		}
		t := report.NewTable("chronod runs", "ID", "State", "Policy", "Workload", "Sim time (s)", "Swaps", "Error")
		for _, r := range resp.Runs {
			t.AddRow(r.ID, r.State, r.Policy, r.Spec.Workload, r.SimNowS, r.Swaps, firstLine(r.Error))
		}
		t.Fprint(os.Stdout)
		return 0

	case daemon.OpPause, daemon.OpResume, daemon.OpCancel, daemon.OpDump:
		resp, err := c.Do(daemon.Request{Op: a.op, ID: a.id})
		if err != nil {
			return fail(err.Error())
		}
		if !resp.OK {
			return fail(resp.Error)
		}
		if resp.Table != "" {
			fmt.Print(resp.Table)
		} else if resp.Run != nil {
			printRun(*resp.Run)
		}
		return 0

	case daemon.OpReconfigure:
		set := map[string]string{}
		for _, kv := range a.sets {
			key, val, ok := strings.Cut(kv, "=")
			if !ok || key == "" {
				return fail(fmt.Sprintf("bad -set %q (want key=value)", kv))
			}
			set[key] = val
		}
		resp, err := c.Do(daemon.Request{Op: daemon.OpReconfigure, ID: a.id, Policy: a.policy, Set: set})
		if err != nil {
			return fail(err.Error())
		}
		if !resp.OK {
			return fail(resp.Error)
		}
		fmt.Printf("reconfigured %s (%d clock events dropped by the swap)\n", a.id, resp.Dropped)
		printRun(*resp.Run)
		return 0

	case daemon.OpReload, daemon.OpShutdown:
		resp, err := c.Do(daemon.Request{Op: a.op})
		if err != nil {
			return fail(err.Error())
		}
		if !resp.OK {
			return fail(resp.Error)
		}
		fmt.Println("ok")
		return 0

	default:
		return fail(fmt.Sprintf("unknown -op %q (ping|submit|status|list|pause|resume|cancel|reconfigure|dump|reload|shutdown)", a.op))
	}
}

// waitForRun polls until the run settles, then prints its final state
// and table. Exit status mirrors the run's fate.
func waitForRun(c *daemon.Client, id string) int {
	for {
		resp, err := c.Do(daemon.Request{Op: daemon.OpStatus, ID: id})
		if err != nil {
			fmt.Fprintln(os.Stderr, "chronoctl:", err)
			return 1
		}
		if !resp.OK {
			fmt.Fprintln(os.Stderr, "chronoctl:", resp.Error)
			return 1
		}
		switch resp.Run.State {
		case daemon.StateDone:
			fmt.Print(resp.Table)
			return 0
		case daemon.StateFailed, daemon.StateCancelled, daemon.StateInterrupted, daemon.StatePaused:
			printRun(*resp.Run)
			return 1
		}
		time.Sleep(250 * time.Millisecond) //chrono:wallclock client polling cadence
	}
}

func printRun(r daemon.RunInfo) {
	fmt.Printf("%s: %s  policy=%s workload=%s sim=%.1fs", r.ID, r.State, r.Policy, r.Spec.Workload, r.SimNowS)
	if r.Swaps > 0 {
		fmt.Printf(" swaps=%d dropped_events=%d", r.Swaps, r.DroppedEvents)
	}
	if r.AbandonedGoroutine {
		fmt.Print(" abandoned_goroutine=true")
	}
	if r.Error != "" {
		fmt.Printf("\n  error: %s", firstLine(r.Error))
	}
	fmt.Println()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
