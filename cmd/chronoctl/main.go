// Command chronoctl mirrors the paper's procfs/sysctl administration
// surface (§4, Appendix A step 6): it lists, reads and writes Chrono's
// runtime parameters against a live simulation, then reports the effect.
//
// Because the simulator is in-process, chronoctl demonstrates the control
// flow by starting a short pmbench run, applying the requested parameter
// writes mid-run (at half the duration), and printing before/after
// throughput — the user-visible effect a real `echo N > /proc/sys/...`
// would have.
//
// Examples:
//
//	chronoctl -list
//	chronoctl -set chrono/rate_limit_bps=50000000 -secs 300
//	chronoctl -set chrono/cit_threshold_ms=200 -set chrono/delta_step=0.25
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"chrono/internal/core"
	"chrono/internal/engine"
	"chrono/internal/report"
	"chrono/internal/simclock"
	"chrono/internal/workload"
)

// setFlags collects repeated -set key=value arguments.
type setFlags []string

func (s *setFlags) String() string { return strings.Join(*s, ",") }
func (s *setFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var sets setFlags
	var (
		list = flag.Bool("list", false, "list all parameters with current values")
		secs = flag.Float64("secs", 240, "virtual run seconds for the demonstration")
		seed = flag.Uint64("seed", 42, "simulation seed")
	)
	flag.Var(&sets, "set", "parameter write, key=value (repeatable)")
	flag.Parse()

	// Build a live system so the parameter table is fully populated.
	e := engine.New(engine.Config{Seed: *seed})
	w := &workload.Pmbench{Processes: 20, WorkingSetGB: 12, ReadPct: 70, Stride: 2}
	if err := w.Build(e); err != nil {
		fmt.Fprintln(os.Stderr, "chronoctl:", err)
		os.Exit(1)
	}
	ch := core.New(core.Options{})
	e.AttachPolicy(ch)

	if *list {
		t := report.NewTable("Runtime parameters (sysctl/procfs controllers)",
			"Path", "Value", "Description")
		for _, p := range e.Sysctl().All() {
			t.AddRow(p.Path, p.Get(), p.Description)
		}
		t.Fprint(os.Stdout)
		return
	}
	if len(sets) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	half := simclock.FromSeconds(*secs / 2)
	var beforeThr float64
	e.Clock().At(half, func(now simclock.Time) {
		beforeThr = e.M.Accesses / now.Seconds() / 1e6
		for _, kv := range sets {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				fmt.Fprintf(os.Stderr, "chronoctl: bad -set %q (want key=value)\n", kv)
				os.Exit(2)
			}
			if err := e.Sysctl().Set(parts[0], parts[1]); err != nil {
				fmt.Fprintln(os.Stderr, "chronoctl:", err)
				os.Exit(1)
			}
			fmt.Printf("applied %s = %s at t=%.0fs\n", parts[0], parts[1], now.Seconds())
		}
	})
	m := e.Run(simclock.FromSeconds(*secs))

	afterThr := (m.Accesses - beforeThr*half.Seconds()*1e6) / (*secs / 2) / 1e6
	t := report.NewTable("Effect of parameter writes", "Window", "Throughput (Mop/s)")
	t.AddRow("before writes (first half)", beforeThr)
	t.AddRow("after writes (second half)", afterThr)
	t.Fprint(os.Stdout)
	fmt.Printf("final CIT threshold: %.1f ms, rate limit: %.1f MB/s\n",
		ch.ThresholdMS(), ch.RateLimitMBps())
}
