// Command chronod is the long-running simulation service: it hosts many
// concurrent simulator engines behind a unix-socket JSON API
// (internal/daemon) and is robust by construction — per-run panic
// confinement, stall watchdogs, bounded admission with explicit
// load-shedding, two-stage signal drain, and crash recovery that
// auto-resumes in-flight runs byte-identically after a kill -9.
//
// Usage:
//
//	chronod -state /var/lib/chronod &
//	chronoctl -socket /var/lib/chronod/chronod.sock -op submit -policy Chrono -workload pmbench
//
// Signals: the first SIGINT/SIGTERM drains (runs checkpoint at their
// next event boundary, the process exits 130 with a resume hint); a
// second signal exits immediately. SIGHUP reloads the -config file with
// validate-then-swap semantics: a bad config is rejected and the old
// one stays in force.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"chrono/internal/daemon"
	"chrono/internal/sigdrain"
	"chrono/internal/watchdog"
)

func main() {
	var (
		stateDir = flag.String("state", "chronod-state", "state directory (runs, checkpoints, final tables)")
		socket   = flag.String("socket", "", "unix socket path (default <state>/chronod.sock)")
		cfgPath  = flag.String("config", "", "optional JSON config file, reloaded on SIGHUP")
	)
	flag.Parse()
	if *socket == "" {
		*socket = filepath.Join(*stateDir, "chronod.sock")
	}

	if err := os.MkdirAll(*stateDir, 0o755); err != nil {
		log.Fatalf("chronod: %v", err)
	}
	d, err := daemon.New(*stateDir, *cfgPath)
	if err != nil {
		log.Fatalf("chronod: %v", err)
	}
	l, err := daemon.Listen(*socket)
	if err != nil {
		log.Fatalf("chronod: %v", err)
	}
	log.Printf("chronod: serving on %s (state %s)", *socket, *stateDir)

	ctx, stop := sigdrain.Install(context.Background(), sigdrain.Options{Name: "chronod"})
	defer stop()

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if resp := d.Reload(); !resp.OK {
				log.Printf("chronod: %s", resp.Error)
			}
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve(l) }()

	drained := false
	select {
	case <-ctx.Done():
		drained = true
	case <-d.ShutdownRequested():
		log.Printf("chronod: shutdown requested over the socket; draining")
	case err := <-serveErr:
		if err != nil {
			log.Printf("chronod: serve: %v", err)
		}
	}
	_ = l.Close()
	d.Shutdown()

	if n := watchdog.Abandoned(); n > 0 {
		fmt.Fprintf(os.Stderr,
			"chronod: WARNING: %d run goroutine(s) were abandoned after hard stalls; see abandoned_goroutine runs in the registry\n", n)
	}
	if n := d.InterruptedCount(); n > 0 {
		hint := fmt.Sprintf("restart chronod with -state %s to auto-resume %d interrupted run(s)", *stateDir, n)
		if drained {
			sigdrain.Drained(sigdrain.Options{Name: "chronod"}, hint) // exits 130
		}
		fmt.Fprintf(os.Stderr, "chronod: %s\n", hint)
	}
	stop()
}
