// Command chronotrace records, inspects, and replays simulation traces.
//
//	chronotrace record -workload pmbench -secs 300 -o run.trace
//	chronotrace info   -i run.trace
//	chronotrace replay -i run.trace -policy Chrono -secs 300
//
// A recorded trace carries the machine shape, every process's page-weight
// pattern (including phase changes), and a placement/metrics timeline, so
// one captured workload can be replayed against any policy.
package main

import (
	"flag"
	"fmt"
	"os"

	"chrono/internal/core"
	"chrono/internal/engine"
	"chrono/internal/experiments"
	"chrono/internal/simclock"
	"chrono/internal/trace"
	"chrono/internal/units"
	"chrono/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: chronotrace record|info|replay [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wl := fs.String("workload", "pmbench", "pmbench|graph500|kvstore|multitenant")
	secs := fs.Float64("secs", 300, "virtual seconds")
	out := fs.String("o", "run.trace", "output file")
	seed := fs.Uint64("seed", 42, "seed")
	procs := fs.Int("procs", 16, "process count")
	ws := fs.Float64("ws", 12, "working set GB per process (pmbench)")
	fatal(fs.Parse(args))

	var w workload.Workload
	switch *wl {
	case "pmbench":
		w = &workload.Pmbench{Processes: *procs, WorkingSetGB: units.GB(*ws), ReadPct: 70, Stride: 2}
	case "graph500":
		w = &workload.Graph500{TotalGB: units.GB(*ws * float64(*procs))}
	case "kvstore":
		w = &workload.KVStore{Flavor: workload.Memcached, StoreGB: 160, SetRatio: 1, GetRatio: 10}
	case "multitenant":
		w = &workload.MultiTenant{Tenants: *procs}
	default:
		fatal(fmt.Errorf("unknown workload %q", *wl))
	}

	e := engine.New(engine.Config{Seed: *seed})
	fatal(w.Build(e))
	f, err := os.Create(*out)
	fatal(err)
	rec := trace.NewRecorder(f)
	fatal(rec.Attach(e, w.Name()))
	e.AttachPolicy(core.New(core.Options{}))
	m := e.Run(simclock.FromSeconds(*secs))
	fatal(rec.Flush())
	fatal(f.Close())
	fmt.Printf("recorded %s: %.0fs virtual, %.1f Mop/s, FMAR %.1f%%\n",
		*out, m.Duration.Seconds(), m.Throughput(), m.FMAR()*100)
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "run.trace", "input file")
	fatal(fs.Parse(args))
	f, err := os.Open(*in)
	fatal(err)
	defer func() { _ = f.Close() }() // read-only: close failure is moot
	tr, err := trace.Read(f)
	fatal(err)
	fmt.Printf("workload:  %s\n", tr.Header.Workload)
	fmt.Printf("machine:   %.0f GB fast + %.0f GB slow (%d pages/GB)\n",
		tr.Header.FastGB, tr.Header.SlowGB, tr.Header.PagesPerGB)
	fmt.Printf("processes: %d\n", len(tr.Processes))
	fmt.Printf("patterns:  %d (%d phase changes)\n", len(tr.Patterns), phaseChanges(tr))
	fmt.Printf("snapshots: %d\n", len(tr.Snapshots))
	if n := len(tr.Snapshots); n > 0 {
		last := tr.Snapshots[n-1]
		fmt.Printf("final:     t=%.0fs FMAR=%.1f%% prom=%d dem=%d\n",
			last.AtSec, last.FMAR*100, last.Promotions, last.Demotions)
	}
}

func phaseChanges(tr *trace.Trace) int {
	n := 0
	for _, p := range tr.Patterns {
		if p.AtSec > 0 {
			n++
		}
	}
	return n
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "run.trace", "input file")
	pol := fs.String("policy", "Chrono", "policy to replay against")
	secs := fs.Float64("secs", 300, "virtual seconds")
	seed := fs.Uint64("seed", 42, "seed")
	fatal(fs.Parse(args))

	f, err := os.Open(*in)
	fatal(err)
	tr, err := trace.Read(f)
	_ = f.Close() // read-only: close failure is moot
	fatal(err)

	e := engine.New(engine.Config{
		Seed:   *seed,
		FastGB: tr.Header.FastGB, SlowGB: tr.Header.SlowGB,
		PagesPerGB: tr.Header.PagesPerGB,
	})
	rp := &trace.Replay{T: tr}
	fatal(rp.Build(e))
	p, err := experiments.NewPolicy(*pol)
	fatal(err)
	e.AttachPolicy(p)
	m := e.Run(simclock.FromSeconds(*secs))
	fmt.Printf("replayed %s under %s: %.1f Mop/s, FMAR %.1f%%, p99 %.0f ns, prom %d\n",
		*in, *pol, m.Throughput(), m.FMAR()*100, m.Lat.Percentile(0.99), m.Promotions)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "chronotrace:", err)
		os.Exit(1)
	}
}
