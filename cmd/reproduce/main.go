// Command reproduce regenerates every table and figure of the paper's
// evaluation (see the experiment index in DESIGN.md and the recorded
// outcomes in EXPERIMENTS.md).
//
// Usage:
//
//	reproduce [-experiment all|tab1|tab2|fig1|fig2a|fig2b|fig6|fig7|fig8|
//	           fig9|fig10a|fig10bc|fig10d|fig11|fig11b|fig12|fig13|appb|
//	           ext|drift|seeds|adv]
//	          [-quick] [-seed N] [-duration S] [-j N]
//	          [-faults SPEC] [-retries N] [-failures F]
//	          [-cpuprofile F] [-memprofile F] [-trace F]
//
// -quick shortens run durations ~4x for a fast smoke pass; the shapes
// survive, the converged values get noisier.
//
// -j runs independent simulations of each experiment in parallel (0 =
// GOMAXPROCS). Output is byte-identical at every worker count; see the
// "Parallel sweeps" section of DESIGN.md for why.
//
// -faults enables deterministic fault injection in every run: "aggressive"
// or a spec like "mig=0.2,alloc=0.1:4,pebs=0.25:0.5,delay=0.2:20" (see
// internal/faultinject). The same seed and plan reproduce the same faults
// bit-for-bit. Sweep cells that crash are retried -retries times, then
// recorded in a failure manifest (stderr summary; full JSON repro bundles
// to the -failures file) while the surviving grid still renders.
//
// -checkpoint-dir makes sweep cells durable: each cell periodically
// snapshots its engine (every -checkpoint-interval of wall time), records
// finished cells, and a stall watchdog aborts cells whose virtual time
// stops advancing for -stall-timeout. SIGINT/SIGTERM drain gracefully:
// in-flight cells checkpoint at the next event boundary, the failure
// manifest records their resume pointers, and a second signal hard-exits.
// -resume continues a previous invocation from the same directory:
// finished cells are short-circuited, interrupted cells restore from
// their snapshots, and the final output is byte-identical to a run that
// was never interrupted (CI enforces this via `make resume-check`).
// Resuming with conflicting simulation flags (a changed -faults plan,
// seed, duration, or -quick) is rejected with a clear error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"chrono/internal/checkpoint"
	"chrono/internal/experiments"
	"chrono/internal/faultinject"
	"chrono/internal/parallel"
	"chrono/internal/report"
	"chrono/internal/sigdrain"
	"chrono/internal/simclock"
	"chrono/internal/watchdog"
)

func main() {
	var (
		exp      = flag.String("experiment", "all", "experiment id (see doc) or comma list")
		quick    = flag.Bool("quick", false, "short runs (~4x faster, noisier)")
		seed     = flag.Uint64("seed", 42, "simulation seed")
		duration = flag.Float64("duration", 0, "override virtual run seconds (0 = per-experiment default)")
		jsonOut  = flag.String("json", "", "also write all tables as JSON to this file")
		workers  = flag.Int("j", 0, "parallel simulations per experiment (0 = GOMAXPROCS, 1 = serial)")
		faults   = flag.String("faults", "", "fault-injection plan: none|aggressive|mig=P,alloc=P:N,pebs=P:F,delay=P:MS")
		retries  = flag.Int("retries", 1, "extra attempts for a crashed sweep run before it enters the failure manifest")
		failOut  = flag.String("failures", "", "write crashed-run repro bundles as JSON to this file (written only when runs crashed)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut = flag.String("trace", "", "write a runtime execution trace to this file")
		ckptDir  = flag.String("checkpoint-dir", "", "directory for durable sweep state (periodic cell snapshots, finished-cell records, failure manifest)")
		resume   = flag.Bool("resume", false, "resume from -checkpoint-dir: skip finished cells, restore interrupted ones")
		ckptIvl  = flag.Duration("checkpoint-interval", 30*time.Second, "wall-clock cadence of periodic cell snapshots (requires -checkpoint-dir)")
		shards   = flag.Int("shards", 1, "fault-machinery shards per engine (multi-core single-run execution; never affects results)")
		shardW   = flag.Int("shard-workers", 0, "goroutines materializing shard timers (0 = min(shards, GOMAXPROCS))")
		stallTO  = flag.Duration("stall-timeout", 2*time.Minute, "abort a cell whose virtual time makes no progress for this wall-clock window, 0 disables (requires -checkpoint-dir)")
	)
	flag.Parse()

	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "reproduce: -resume requires -checkpoint-dir")
		os.Exit(2)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		fail(err)
		fail(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			fail(f.Close())
		}()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fail(err)
		fail(trace.Start(f))
		defer func() {
			trace.Stop()
			fail(f.Close())
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			fail(err)
			runtime.GC()
			fail(pprof.WriteHeapProfile(f))
			fail(f.Close())
		}()
	}

	var emitted []*report.Table
	emit := func(ts ...*report.Table) {
		for _, t := range ts {
			t.Fprint(os.Stdout)
			emitted = append(emitted, t)
		}
	}

	o := experiments.RunOpts{
		Seed: *seed, Workers: parallel.Resolve(*workers), Retries: *retries,
		Shards: *shards, ShardWorkers: *shardW,
	}
	if *faults != "" {
		plan, err := faultinject.ParsePlan(*faults)
		fail(err)
		o.Faults = plan
	}
	longDur := simclock.Duration(1500) * simclock.Second
	if *quick {
		o.Duration = 240 * simclock.Second
		longDur = 400 * simclock.Second
	}
	if *duration > 0 {
		o.Duration = simclock.FromSeconds(*duration)
		longDur = o.Duration
	}

	// Durable sweeps: validate against the directory's recorded
	// configuration (a resume under different simulation flags would mix
	// incompatible state), then enable per-cell checkpointing.
	if *ckptDir != "" {
		fail(os.MkdirAll(*ckptDir, 0o755))
		fail(validateSweepInfo(*ckptDir, *resume, sweepInfo{
			Seed: *seed, Quick: *quick, DurationS: *duration, Faults: *faults,
		}))
		o.Checkpoint = &experiments.CheckpointOpts{
			Dir:          *ckptDir,
			Resume:       *resume,
			Interval:     *ckptIvl,
			StallTimeout: *stallTO,
		}
	}

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the sweep
	// context — unstarted cells are skipped, in-flight cells drain to a
	// resume snapshot at their next event boundary. A second signal
	// hard-exits immediately (see internal/sigdrain).
	ctx, stopDrain := sigdrain.Install(context.Background(), sigdrain.Options{Name: "reproduce"})
	defer stopDrain()
	o.Ctx = ctx

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"tab1", "tab2", "fig1", "fig2a", "fig2b", "fig6", "fig7", "fig8",
			"fig9", "fig10a", "fig10bc", "fig10d", "fig11", "fig11b", "fig12", "fig13", "appb",
			"ext", "drift", "seeds", "adv"}
	}

	// failedRuns accumulates the crash manifest across every sweep; it is
	// empty (and produces no output) on a healthy run.
	var failedRuns []experiments.FailedRun

	// drained flips when a graceful shutdown (or a sweep's own Interrupted
	// report) stops the experiment loop early.
	drained := false

	// Figures 6, 7 and 8 share their runs; cache the sweep.
	var sweep *experiments.PmbenchSweep
	getSweep := func() (*experiments.PmbenchSweep, error) {
		if sweep == nil {
			var err error
			sweep, err = experiments.RunPmbenchSweep(
				experiments.Fig6a, experiments.StandardPolicies, experiments.RWRatios, o)
			if err != nil {
				return nil, err
			}
			failedRuns = append(failedRuns, sweep.Failed...)
			if sweep.Interrupted {
				drained = true
			}
		}
		return sweep, nil
	}

	// runOne executes one experiment id and emits its tables. An error
	// return aborts: a context cancellation counts as a graceful drain,
	// anything else is fatal.
	runOne := func(id string) error {
		switch id {
		case "tab1":
			emit(experiments.Table1())
		case "tab2":
			emit(experiments.Table2())
		case "fig1":
			rows, err := experiments.RunFig1(o)
			if err != nil {
				return err
			}
			emit(experiments.Fig1Table(rows))
		case "fig2a":
			t, err := experiments.RunFig2a(experiments.StandardPolicies, o)
			if err != nil {
				return err
			}
			emit(t)
		case "fig2b":
			t, err := experiments.RunFig2b(o)
			if err != nil {
				return err
			}
			emit(t)
		case "fig6":
			s, err := getSweep()
			if err != nil {
				return err
			}
			emit(s.ThroughputTable())
			// The 6b/6c panels run their own (smaller) grids.
			for _, cfg := range []experiments.PmbenchConfig{experiments.Fig6b, experiments.Fig6c} {
				sw, err := experiments.RunPmbenchSweep(cfg, experiments.StandardPolicies, experiments.RWRatios, o)
				if err != nil {
					return err
				}
				failedRuns = append(failedRuns, sw.Failed...)
				if sw.Interrupted {
					drained = true
				}
				emit(sw.ThroughputTable())
			}
		case "fig7":
			s, err := getSweep()
			if err != nil {
				return err
			}
			emit(s.BaselineLatencyCDF())
			for _, t := range s.LatencyTables() {
				emit(t)
			}
		case "fig8":
			s, err := getSweep()
			if err != nil {
				return err
			}
			emit(s.RuntimeCharacteristics())
		case "fig9":
			ro := o
			if ro.Duration == 0 {
				ro.Duration = longDur
			}
			results, err := experiments.RunFig9(experiments.StandardPolicies, ro)
			if err != nil {
				return err
			}
			for _, t := range experiments.Fig9Tables(results) {
				emit(t)
			}
		case "fig10a":
			f, err := experiments.RunFig10a(o)
			if err != nil {
				return err
			}
			emit(experiments.Fig10aTable(f))
		case "fig10bc":
			ro := o
			if ro.Duration == 0 {
				ro.Duration = longDur
			}
			th, rl, err := experiments.RunFig10bc(ro)
			if err != nil {
				return err
			}
			for _, t := range experiments.Fig10bcTables(th, rl) {
				emit(t)
			}
		case "fig10d":
			t, err := experiments.RunFig10d(shortened(o, 300))
			if err != nil {
				return err
			}
			emit(t)
		case "fig11":
			t, err := experiments.RunFig11a(experiments.StandardPolicies, o)
			if err != nil {
				return err
			}
			emit(t)
		case "fig11b":
			t, err := experiments.RunFig11b(shortened(o, 300))
			if err != nil {
				return err
			}
			emit(t)
		case "fig12":
			ts, err := experiments.RunFig12(experiments.StandardPolicies, o)
			if err != nil {
				return err
			}
			for _, t := range ts {
				emit(t)
			}
		case "fig13":
			// The semi-automatic variants converge at a fixed 120 MB/s
			// rate limit; the design-choice comparison needs the paper's
			// full run length.
			ro := o
			if ro.Duration == 0 {
				ro.Duration = longDur
			}
			t, err := experiments.RunFig13(ro)
			if err != nil {
				return err
			}
			emit(t)
		case "seeds":
			tbl, err := experiments.RunSeedStability(nil, o)
			if err != nil {
				return err
			}
			emit(tbl)
		case "ext":
			t, err := experiments.RunExtendedComparison(o)
			if err != nil {
				return err
			}
			emit(t)
		case "drift":
			ro := o
			if ro.Duration == 0 {
				ro.Duration = 1200 * simclock.Second
			}
			results, err := experiments.RunDrift(
				[]string{"Linux-NB", "Memtis", "Chrono"}, 240, ro)
			if err != nil {
				return err
			}
			emit(experiments.DriftTable(results))
		case "adv":
			s, err := experiments.RunAdversarial(shortened(o, 300))
			if err != nil {
				return err
			}
			for i := range s.Failed {
				failedRuns = append(failedRuns, *s.Failed[i])
				if s.Failed[i].Interrupted {
					drained = true
				}
			}
			emit(s.Tables...)
		case "appb":
			emit(experiments.AppB1Table(*seed, 20000))
			emit(experiments.FigB1Table())
			emit(experiments.FigB2Table())
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		return nil
	}

	for _, id := range ids {
		if ctx.Err() != nil {
			drained = true
			break
		}
		start := time.Now() //chrono:wallclock progress reporting on stderr, never enters results
		if err := runOne(strings.TrimSpace(id)); err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				drained = true
				break
			}
			fail(err)
		}
		//chrono:wallclock progress reporting on stderr, never enters results
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
		if drained {
			break
		}
	}

	if *jsonOut != "" {
		fail(writeJSONAtomic(*jsonOut, emitted))
		fmt.Fprintf(os.Stderr, "wrote %d tables to %s\n", len(emitted), *jsonOut)
	}

	// The failure manifest is written atomically (write + rename): a crash
	// or signal mid-write can never leave a truncated manifest behind. With
	// a checkpoint directory it also lands at <dir>/failures.json so a bare
	// `-resume` run finds the resume pointers without extra flags.
	if len(failedRuns) > 0 {
		crashed := 0
		for i := range failedRuns {
			if !failedRuns[i].Interrupted && !failedRuns[i].Stalled {
				crashed++
			}
		}
		if crashed > 0 {
			fmt.Fprintf(os.Stderr, "WARNING: %d run(s) crashed every attempt; their table cells read FAILED\n", crashed)
		}
		if n := watchdog.Abandoned(); n > 0 {
			fmt.Fprintf(os.Stderr, "WARNING: %d hard-stalled run goroutine(s) were abandoned and leak until exit; see abandoned_goroutine entries in the failure manifest\n", n)
		}
		for i := range failedRuns {
			fmt.Fprintln(os.Stderr, "  "+failedRuns[i].String())
		}
		if *failOut != "" {
			fail(writeJSONAtomic(*failOut, failedRuns))
			fmt.Fprintf(os.Stderr, "wrote %d repro bundles to %s\n", len(failedRuns), *failOut)
		}
	}
	if *ckptDir != "" {
		manifest := filepath.Join(*ckptDir, "failures.json")
		if len(failedRuns) > 0 {
			fail(writeJSONAtomic(manifest, failedRuns))
		} else if !drained {
			// A clean, complete run invalidates any stale manifest.
			if err := os.Remove(manifest); err != nil && !os.IsNotExist(err) {
				fail(err)
			}
		}
	}

	if drained {
		hint := ""
		if *ckptDir != "" {
			hint = fmt.Sprintf("rerun with -resume -checkpoint-dir %s to continue", *ckptDir)
		}
		sigdrain.Drained(sigdrain.Options{Name: "reproduce"}, hint)
	}
}

// writeJSONAtomic marshals v (indented) and writes it with the checkpoint
// package's write-to-temp-then-rename discipline, so manifests are always
// observed either whole or absent.
func writeJSONAtomic(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return checkpoint.WriteFileAtomic(path, append(raw, '\n'))
}

// sweepInfo pins the simulation-shaping flags of a checkpoint directory.
// Every field changes which cells exist or what they compute, so a resume
// under different values would silently mix incompatible state.
type sweepInfo struct {
	Seed      uint64  `json:"seed"`
	Quick     bool    `json:"quick"`
	DurationS float64 `json:"duration_s"`
	Faults    string  `json:"faults"`
}

// validateSweepInfo records cur in a fresh checkpoint directory, and on
// -resume rejects any drift from the recorded configuration with an error
// naming the offending flag.
func validateSweepInfo(dir string, resume bool, cur sweepInfo) error {
	path := filepath.Join(dir, "sweepinfo.json")
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return writeJSONAtomic(path, cur)
	}
	if err != nil {
		return err
	}
	var prev sweepInfo
	if jerr := json.Unmarshal(raw, &prev); jerr != nil {
		return fmt.Errorf("corrupt %s (%v); delete it or use a fresh -checkpoint-dir", path, jerr)
	}
	if prev == cur {
		return nil
	}
	if !resume {
		// A fresh (non-resume) invocation may repurpose the directory;
		// cells keyed by the old configuration simply become unreachable.
		return writeJSONAtomic(path, cur)
	}
	conflict := func(flagName string, was, now any) error {
		return fmt.Errorf("resume configuration conflict: %s was %v, now %v — rerun with the original flags or use a fresh -checkpoint-dir", flagName, was, now)
	}
	switch {
	case prev.Faults != cur.Faults:
		return conflict("-faults", fmt.Sprintf("%q", prev.Faults), fmt.Sprintf("%q", cur.Faults))
	case prev.Seed != cur.Seed:
		return conflict("-seed", prev.Seed, cur.Seed)
	case prev.Quick != cur.Quick:
		return conflict("-quick", prev.Quick, cur.Quick)
	default:
		return conflict("-duration", prev.DurationS, cur.DurationS)
	}
}

// shortened caps the duration of sweep-heavy experiments.
func shortened(o experiments.RunOpts, seconds float64) experiments.RunOpts {
	if o.Duration == 0 || o.Duration > simclock.FromSeconds(seconds) {
		o.Duration = simclock.FromSeconds(seconds)
	}
	return o
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}
