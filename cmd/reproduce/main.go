// Command reproduce regenerates every table and figure of the paper's
// evaluation (see the experiment index in DESIGN.md and the recorded
// outcomes in EXPERIMENTS.md).
//
// Usage:
//
//	reproduce [-experiment all|tab1|tab2|fig1|fig2a|fig2b|fig6|fig7|fig8|
//	           fig9|fig10a|fig10bc|fig10d|fig11|fig11b|fig12|fig13|appb|
//	           ext|drift|seeds]
//	          [-quick] [-seed N] [-duration S] [-j N]
//	          [-faults SPEC] [-retries N] [-failures F]
//	          [-cpuprofile F] [-memprofile F] [-trace F]
//
// -quick shortens run durations ~4x for a fast smoke pass; the shapes
// survive, the converged values get noisier.
//
// -j runs independent simulations of each experiment in parallel (0 =
// GOMAXPROCS). Output is byte-identical at every worker count; see the
// "Parallel sweeps" section of DESIGN.md for why.
//
// -faults enables deterministic fault injection in every run: "aggressive"
// or a spec like "mig=0.2,alloc=0.1:4,pebs=0.25:0.5,delay=0.2:20" (see
// internal/faultinject). The same seed and plan reproduce the same faults
// bit-for-bit. Sweep cells that crash are retried -retries times, then
// recorded in a failure manifest (stderr summary; full JSON repro bundles
// to the -failures file) while the surviving grid still renders.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"chrono/internal/experiments"
	"chrono/internal/faultinject"
	"chrono/internal/parallel"
	"chrono/internal/report"
	"chrono/internal/simclock"
)

func main() {
	var (
		exp      = flag.String("experiment", "all", "experiment id (see doc) or comma list")
		quick    = flag.Bool("quick", false, "short runs (~4x faster, noisier)")
		seed     = flag.Uint64("seed", 42, "simulation seed")
		duration = flag.Float64("duration", 0, "override virtual run seconds (0 = per-experiment default)")
		jsonOut  = flag.String("json", "", "also write all tables as JSON to this file")
		workers  = flag.Int("j", 0, "parallel simulations per experiment (0 = GOMAXPROCS, 1 = serial)")
		faults   = flag.String("faults", "", "fault-injection plan: none|aggressive|mig=P,alloc=P:N,pebs=P:F,delay=P:MS")
		retries  = flag.Int("retries", 1, "extra attempts for a crashed sweep run before it enters the failure manifest")
		failOut  = flag.String("failures", "", "write crashed-run repro bundles as JSON to this file (written only when runs crashed)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		fail(err)
		fail(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			fail(f.Close())
		}()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fail(err)
		fail(trace.Start(f))
		defer func() {
			trace.Stop()
			fail(f.Close())
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			fail(err)
			runtime.GC()
			fail(pprof.WriteHeapProfile(f))
			fail(f.Close())
		}()
	}

	var emitted []*report.Table
	emit := func(ts ...*report.Table) {
		for _, t := range ts {
			t.Fprint(os.Stdout)
			emitted = append(emitted, t)
		}
	}

	o := experiments.RunOpts{Seed: *seed, Workers: parallel.Resolve(*workers), Retries: *retries}
	if *faults != "" {
		plan, err := faultinject.ParsePlan(*faults)
		fail(err)
		o.Faults = plan
	}
	longDur := simclock.Duration(1500) * simclock.Second
	if *quick {
		o.Duration = 240 * simclock.Second
		longDur = 400 * simclock.Second
	}
	if *duration > 0 {
		o.Duration = simclock.FromSeconds(*duration)
		longDur = o.Duration
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"tab1", "tab2", "fig1", "fig2a", "fig2b", "fig6", "fig7", "fig8",
			"fig9", "fig10a", "fig10bc", "fig10d", "fig11", "fig11b", "fig12", "fig13", "appb",
			"ext", "drift", "seeds"}
	}

	// failedRuns accumulates the crash manifest across every sweep; it is
	// empty (and produces no output) on a healthy run.
	var failedRuns []experiments.FailedRun

	// Figures 6, 7 and 8 share their runs; cache the sweep.
	var sweep *experiments.PmbenchSweep
	getSweep := func() *experiments.PmbenchSweep {
		if sweep == nil {
			var err error
			sweep, err = experiments.RunPmbenchSweep(
				experiments.Fig6a, experiments.StandardPolicies, experiments.RWRatios, o)
			fail(err)
			failedRuns = append(failedRuns, sweep.Failed...)
		}
		return sweep
	}

	for _, id := range ids {
		start := time.Now() //chrono:wallclock progress reporting on stderr, never enters results
		switch strings.TrimSpace(id) {
		case "tab1":
			emit(experiments.Table1())
		case "tab2":
			emit(experiments.Table2())
		case "fig1":
			rows, err := experiments.RunFig1(o)
			fail(err)
			emit(experiments.Fig1Table(rows))
		case "fig2a":
			t, err := experiments.RunFig2a(experiments.StandardPolicies, o)
			fail(err)
			emit(t)
		case "fig2b":
			t, err := experiments.RunFig2b(o)
			fail(err)
			emit(t)
		case "fig6":
			s := getSweep()
			emit(s.ThroughputTable())
			// The 6b/6c panels run their own (smaller) grids.
			for _, cfg := range []experiments.PmbenchConfig{experiments.Fig6b, experiments.Fig6c} {
				sw, err := experiments.RunPmbenchSweep(cfg, experiments.StandardPolicies, experiments.RWRatios, o)
				fail(err)
				failedRuns = append(failedRuns, sw.Failed...)
				emit(sw.ThroughputTable())
			}
		case "fig7":
			s := getSweep()
			emit(s.BaselineLatencyCDF())
			for _, t := range s.LatencyTables() {
				emit(t)
			}
		case "fig8":
			emit(getSweep().RuntimeCharacteristics())
		case "fig9":
			ro := o
			if ro.Duration == 0 {
				ro.Duration = longDur
			}
			results, err := experiments.RunFig9(experiments.StandardPolicies, ro)
			fail(err)
			for _, t := range experiments.Fig9Tables(results) {
				emit(t)
			}
		case "fig10a":
			f, err := experiments.RunFig10a(o)
			fail(err)
			emit(experiments.Fig10aTable(f))
		case "fig10bc":
			ro := o
			if ro.Duration == 0 {
				ro.Duration = longDur
			}
			th, rl, err := experiments.RunFig10bc(ro)
			fail(err)
			for _, t := range experiments.Fig10bcTables(th, rl) {
				emit(t)
			}
		case "fig10d":
			ro := shortened(o, 300)
			t, err := experiments.RunFig10d(ro)
			fail(err)
			emit(t)
		case "fig11":
			t, err := experiments.RunFig11a(experiments.StandardPolicies, o)
			fail(err)
			emit(t)
		case "fig11b":
			ro := shortened(o, 300)
			t, err := experiments.RunFig11b(ro)
			fail(err)
			emit(t)
		case "fig12":
			ts, err := experiments.RunFig12(experiments.StandardPolicies, o)
			fail(err)
			for _, t := range ts {
				emit(t)
			}
		case "fig13":
			// The semi-automatic variants converge at a fixed 120 MB/s
			// rate limit; the design-choice comparison needs the paper's
			// full run length.
			ro := o
			if ro.Duration == 0 {
				ro.Duration = longDur
			}
			t, err := experiments.RunFig13(ro)
			fail(err)
			emit(t)
		case "seeds":
			tbl, err := experiments.RunSeedStability(nil, o)
			fail(err)
			emit(tbl)
		case "ext":
			t, err := experiments.RunExtendedComparison(o)
			fail(err)
			emit(t)
		case "drift":
			ro := o
			if ro.Duration == 0 {
				ro.Duration = 1200 * simclock.Second
			}
			results, err := experiments.RunDrift(
				[]string{"Linux-NB", "Memtis", "Chrono"}, 240, ro)
			fail(err)
			emit(experiments.DriftTable(results))
		case "appb":
			emit(experiments.AppB1Table(*seed, 20000))
			emit(experiments.FigB1Table())
			emit(experiments.FigB2Table())
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		//chrono:wallclock progress reporting on stderr, never enters results
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		fail(err)
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		fail(enc.Encode(emitted))
		fail(f.Close())
		fmt.Fprintf(os.Stderr, "wrote %d tables to %s\n", len(emitted), *jsonOut)
	}

	if len(failedRuns) > 0 {
		fmt.Fprintf(os.Stderr, "WARNING: %d run(s) crashed every attempt; their table cells read FAILED\n", len(failedRuns))
		for i := range failedRuns {
			fmt.Fprintln(os.Stderr, "  "+failedRuns[i].String())
		}
		if *failOut != "" {
			f, err := os.Create(*failOut)
			fail(err)
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			fail(enc.Encode(failedRuns))
			fail(f.Close())
			fmt.Fprintf(os.Stderr, "wrote %d repro bundles to %s\n", len(failedRuns), *failOut)
		}
	}
}

// shortened caps the duration of sweep-heavy experiments.
func shortened(o experiments.RunOpts, seconds float64) experiments.RunOpts {
	if o.Duration == 0 || o.Duration > simclock.FromSeconds(seconds) {
		o.Duration = simclock.FromSeconds(seconds)
	}
	return o
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}
