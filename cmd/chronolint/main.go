// Command chronolint runs the repository's determinism and correctness
// linters (internal/analysis) over package patterns, multichecker-style.
//
// Usage:
//
//	go run ./cmd/chronolint ./...
//	go run ./cmd/chronolint -list
//	go run ./cmd/chronolint -all ./internal/engine
//
// Each analyzer is scoped to the packages where its rule is load-bearing
// (see internal/analysis.Applies); -all disables the scoping and runs
// every analyzer on every named package. The exit status is the number of
// packages with findings, capped at 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"chrono/internal/analysis"
	"chrono/internal/analysis/detclock"
	"chrono/internal/analysis/detrand"
	"chrono/internal/analysis/errsink"
	"chrono/internal/analysis/floatorder"
	"chrono/internal/analysis/handlecheck"
	"chrono/internal/analysis/maporder"
	"chrono/internal/analysis/parcapture"
	"chrono/internal/analysis/unitmix"
)

// analyzers is the chronolint suite.
var analyzers = []*analysis.Analyzer{
	detclock.Analyzer,
	detrand.Analyzer,
	maporder.Analyzer,
	errsink.Analyzer,
	unitmix.Analyzer,
	parcapture.Analyzer,
	handlecheck.Analyzer,
	floatorder.Analyzer,
}

func main() {
	var (
		list = flag.Bool("list", false, "list analyzers and exit")
		all  = flag.Bool("all", false, "ignore package scoping; run every analyzer everywhere")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: chronolint [-list] [-all] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fatal(err)
	}

	found := 0
	for _, path := range paths {
		var pkg *analysis.Package
		for _, a := range analyzers {
			if !*all && !analysis.Applies(a.Name, loader.ModulePath(), path) {
				continue
			}
			if pkg == nil {
				pkg, err = loader.Load(path)
				if err != nil {
					fatal(err)
				}
			}
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				fatal(err)
			}
			for _, d := range diags {
				fmt.Println(d)
				found++
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "chronolint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chronolint:", err)
	os.Exit(1)
}
