// Command chronolint runs the repository's determinism and correctness
// linters (internal/analysis) over package patterns, multichecker-style.
//
// Usage:
//
//	go run ./cmd/chronolint ./...
//	go run ./cmd/chronolint -list
//	go run ./cmd/chronolint -all ./internal/engine
//	go run ./cmd/chronolint -format sarif ./... > chronolint.sarif
//	go run ./cmd/chronolint -baseline lint-baseline.json ./...
//	go run ./cmd/chronolint -suggest ./...
//
// Each analyzer is scoped to the packages where its rule is load-bearing
// (see internal/analysis.Applies); -all disables the scoping and runs
// every analyzer on every named package. Severities default per analyzer
// and are overridden with -severity name=warn[,name=error...]; only
// error-severity findings gate. The exit status is 1 when any
// error-severity finding survives suppression and baselining, else 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"chrono/internal/analysis"
	"chrono/internal/analysis/registry"
)

func main() {
	var (
		list          = flag.Bool("list", false, "list analyzers and exit")
		all           = flag.Bool("all", false, "ignore package scoping; run every analyzer everywhere")
		format        = flag.String("format", "text", "output format: text, json, or sarif")
		baselinePath  = flag.String("baseline", "", "baseline file of acknowledged findings to suppress")
		baselineMatch = flag.String("baseline-match", "path", "fingerprint mode: path (rule+file+message) or content (rule+message; survives file renames)")
		writeBaseline = flag.String("write-baseline", "", "write surviving findings to this baseline file and exit 0")
		suggest       = flag.Bool("suggest", false, "print the directive line to insert for each finding: the structural fence the analyzer suggests (//chrono:statesync, //chrono:owned, //chrono:hotpath, //chrono:merge) when it knows one, else a //chrono:allow template")
		severityFlag  = flag.String("severity", "", "per-analyzer severity overrides, e.g. goroscope=warn,lockorder=error")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: chronolint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := registry.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %-7s %s\n", a.Name, a.Severity, a.Doc)
		}
		return
	}

	opts := analysis.Options{All: *all}
	switch *baselineMatch {
	case analysis.BaselineMatchPath, analysis.BaselineMatchContent:
		opts.BaselineMatch = *baselineMatch
	default:
		fatal(fmt.Errorf("unknown -baseline-match %q (want path or content)", *baselineMatch))
	}
	var err error
	if opts.Severities, err = parseSeverities(*severityFlag, analyzers); err != nil {
		fatal(err)
	}
	if *baselinePath != "" {
		if opts.Baseline, err = analysis.LoadBaseline(*baselinePath); err != nil {
			fatal(err)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	res, err := analysis.Drive(loader, analyzers, patterns, opts)
	if err != nil {
		fatal(err)
	}

	if *writeBaseline != "" {
		if err := analysis.WriteBaseline(*writeBaseline, res.Findings); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chronolint: wrote %d finding(s) to %s\n", len(res.Findings), *writeBaseline)
		return
	}

	switch *format {
	case "text":
		for _, f := range res.Findings {
			fmt.Println(f)
			if *suggest {
				if f.Suggest != "" {
					fmt.Printf("\tto resolve, insert above %s:%d:\n\t%s\n", f.File, f.Line, f.Suggest)
				} else {
					fmt.Printf("\tto suppress, insert above %s:%d:\n\t//chrono:allow %s <why this is safe>\n",
						f.File, f.Line, f.Rule)
				}
			}
		}
	case "json":
		out, err := analysis.JSONReport(res)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	case "sarif":
		out, err := analysis.SARIFReport(analyzers, res)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	default:
		fatal(fmt.Errorf("unknown -format %q (want text, json, or sarif)", *format))
	}

	if n := res.Errors(); n > 0 {
		fmt.Fprintf(os.Stderr, "chronolint: %d error(s), %d warning(s), %d suppressed, %d baselined\n",
			n, res.Warnings(), res.Suppressed, res.Baselined)
		os.Exit(1)
	}
	if res.Warnings() > 0 {
		fmt.Fprintf(os.Stderr, "chronolint: %d warning(s), %d suppressed, %d baselined\n",
			res.Warnings(), res.Suppressed, res.Baselined)
	}
}

// parseSeverities parses -severity name=level[,name=level...], validating
// analyzer names so a typo cannot silently leave the default in force.
func parseSeverities(s string, analyzers []*analysis.Analyzer) (map[string]analysis.Severity, error) {
	if s == "" {
		return nil, nil
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	known[analysis.DirectiveRule] = true
	out := make(map[string]analysis.Severity)
	for _, part := range strings.Split(s, ",") {
		name, level, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -severity entry %q (want name=error or name=warn)", part)
		}
		if !known[name] {
			return nil, fmt.Errorf("-severity names unknown analyzer %q", name)
		}
		switch level {
		case "error":
			out[name] = analysis.SevError
		case "warn", "warning":
			out[name] = analysis.SevWarn
		default:
			return nil, fmt.Errorf("bad severity %q for %s (want error or warn)", level, name)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chronolint:", err)
	os.Exit(1)
}
