// Command chronosim runs one tiered-memory simulation from the command
// line and prints its metrics — the quickest way to poke at a policy or a
// workload without the full reproduce harness.
//
// Examples:
//
//	chronosim -policy Chrono -workload pmbench -procs 50 -ws 5 -read 70 -secs 600
//	chronosim -policy Memtis -workload kvstore -flavor redis -secs 300 -huge
//	chronosim -policy Linux-NB -workload graph500 -total 192 -secs 300
//	chronosim -policy Chrono -workload multitenant -secs 900 -series
package main

import (
	"flag"
	"fmt"
	"os"

	"chrono/internal/engine"
	"chrono/internal/experiments"
	"chrono/internal/report"
	"chrono/internal/simclock"
	"chrono/internal/units"
	"chrono/internal/workload"
)

func main() {
	var (
		polName = flag.String("policy", "Chrono", "policy: Linux-NB|AutoTiering|Multi-Clock|TPP|Memtis|Chrono|Chrono-basic|...")
		wl      = flag.String("workload", "pmbench", "workload: pmbench|graph500|kvstore|multitenant")
		procs   = flag.Int("procs", 50, "process count (pmbench/multitenant)")
		ws      = flag.Float64("ws", 5, "working set GB per process (pmbench)")
		readPct = flag.Float64("read", 70, "read percentage")
		stride  = flag.Int("stride", 2, "pmbench stride")
		total   = flag.Float64("total", 256, "total working set GB (graph500)")
		flavor  = flag.String("flavor", "memcached", "kvstore flavor: memcached|redis")
		setget  = flag.String("setget", "1:10", "kvstore SET:GET mix (1:10 or 1:1)")
		secs    = flag.Float64("secs", 600, "virtual duration seconds")
		huge    = flag.Bool("huge", false, "map huge pages")
		seed    = flag.Uint64("seed", 42, "simulation seed")
		series  = flag.Bool("series", false, "print per-process DRAM placement at the end")
		fastGB  = flag.Float64("fast", 64, "fast tier GB")
		slowGB  = flag.Float64("slow", 192, "slow tier GB")
		shards  = flag.Int("shards", 1, "fault-machinery shards (multi-core single-run execution; never affects results)")
		ppg     = flag.Int64("pages-per-gb", 0, "simulated pages per GB (0 = default 256; 262144 = full fidelity, one page per real 4 KB)")
	)
	flag.Parse()

	mode := engine.BasePages
	if *huge {
		mode = engine.HugePages
	}

	var w workload.Workload
	switch *wl {
	case "pmbench":
		w = &workload.Pmbench{
			Processes: *procs, WorkingSetGB: units.GB(*ws), ReadPct: *readPct,
			Stride: *stride, Mode: mode,
		}
	case "graph500":
		w = &workload.Graph500{TotalGB: units.GB(*total), Mode: mode}
	case "kvstore":
		f := workload.Memcached
		if *flavor == "redis" {
			f = workload.Redis
		}
		set, get := 1.0, 10.0
		if *setget == "1:1" {
			get = 1
		}
		w = &workload.KVStore{Flavor: f, StoreGB: 160, SetRatio: set, GetRatio: get, Mode: mode}
	case "multitenant":
		w = &workload.MultiTenant{Tenants: *procs}
	default:
		fmt.Fprintf(os.Stderr, "chronosim: unknown workload %q\n", *wl)
		os.Exit(2)
	}

	opts := experiments.RunOpts{
		Seed:       *seed,
		Duration:   simclock.FromSeconds(*secs),
		FastGB:     units.GB(*fastGB),
		SlowGB:     units.GB(*slowGB),
		Shards:     *shards,
		PagesPerGB: *ppg,
	}
	res, err := experiments.Run(*polName, w, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chronosim:", err)
		os.Exit(1)
	}

	m := res.Metrics
	t := report.NewTable(fmt.Sprintf("%s on %s (%.0fs virtual)", *polName, w.Name(), *secs),
		"Metric", "Value")
	t.AddRow("Throughput (Mop/s)", m.Throughput())
	t.AddRow("FMAR (%)", m.FMAR()*100)
	t.AddRow("Avg latency (ns)", m.Lat.Mean())
	t.AddRow("P50 latency (ns)", m.Lat.Percentile(0.5))
	t.AddRow("P99 latency (ns)", m.Lat.Percentile(0.99))
	t.AddRow("Kernel time (%)", m.KernelTimeFrac()*100)
	t.AddRow("Context switches (/s)", m.ContextSwitchRate())
	t.AddRow("Hint faults", m.Faults)
	t.AddRow("Promotions (pages)", m.Promotions)
	t.AddRow("Demotions (pages)", m.Demotions)
	t.AddRow("Migrated (GB)", m.MigratedBytes/1e9)
	cls, f1, ppr := experiments.Score(res)
	t.AddRow("F1-score", f1)
	t.AddRow("Precision", cls.Precision())
	t.AddRow("Recall", cls.Recall())
	t.AddRow("PPR", ppr)
	if res.Chrono != nil {
		t.AddRow("CIT threshold (ms)", res.Chrono.ThresholdMS())
		t.AddRow("Rate limit (MB/s)", res.Chrono.RateLimitMBps())
		t.AddRow("Thrash events", res.Chrono.ThrashTotal)
		t.AddRow("DCSC samples", res.Chrono.DCSCSamples)
	}
	t.Fprint(os.Stdout)

	if *series {
		pt := report.NewTable("Final placement per process", "PID", "Name", "DRAM %")
		for _, p := range res.Engine.Processes() {
			pt.AddRow(p.PID, p.Name, res.Engine.DRAMPagePercent(p.PID))
		}
		pt.Fprint(os.Stdout)
	}
}
